//! Low-rank / sub-quadratic kernel approximations.
//!
//! The paper's flow calibrates on `n = 1000` devices, where dense `n × n`
//! Gram matrices are the fastest backing store. Foundry-scale populations
//! (10⁵–10⁶ devices per lot) make everything quadratic in `n` explode, so
//! this module provides the two classic low-rank routes around the Gram
//! matrix, both reduced to an explicit feature map `Φ` (`n × r`, `r ≪ n`)
//! with `k(x_i, x_j) ≈ ⟨φ_i, φ_j⟩`:
//!
//! - **Nyström** ([`KernelFeatureMap::nystrom`]): `r` landmark rows chosen
//!   deterministically via the SplitMix64 fork machinery, an
//!   eigendecomposition of the landmark Gram, and
//!   `Φ = K(X, L) · U Λ^{-1/2}`. Works for every kernel.
//! - **Random Fourier features** ([`KernelFeatureMap::rff`]): Bochner
//!   sampling of the RBF kernel's spectral measure,
//!   `φ(x)_j = √(2/D)·cos(ω_jᵀx + b_j)` with per-feature deterministic
//!   RNG streams. RBF only.
//!
//! Which route (if any) a solver takes is selected by [`KernelApprox`] —
//! `Exact` preserves the historical dense path bit-for-bit, and the
//! default `Auto` policy only leaves it above
//! [`KernelApprox::AUTO_EXACT_LIMIT`] rows, so the paper-scale pipeline
//! is untouched.
//!
//! Determinism: landmark selection, feature draws, and every reduction
//! in this module are fixed functions of the input data and seed — never
//! of thread count — so approximate results are bit-identical at any
//! worker-pool size, exactly like the exact paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sidefp_linalg::{lowrank, vecops, Matrix};

use crate::qp::{select_pair, SmoConfig, SmoSolution, WorkingSetQ};
use crate::{check_finite_matrix, GramMatrix, Kernel, MultivariateNormal, StatsError};

/// Master seed for every deterministic random choice the approximation
/// layer makes (landmark selection, Fourier feature draws). Forked per
/// fit via [`approx_fit_seed`] so distinct population sizes decorrelate.
pub(crate) const APPROX_SEED: u64 = 0x51DE_F9A9_0C85_EED5;

/// Derives the per-fit approximation seed for a population of `n` rows.
pub(crate) fn approx_fit_seed(n: usize) -> u64 {
    sidefp_parallel::fork_seed(APPROX_SEED, n as u64)
}

/// Working-set block size of the feature-space decomposition solver.
const FEATURE_SMO_BLOCK: usize = 128;

/// Inner pairwise updates per outer round, as a multiple of the block
/// size actually selected.
const FEATURE_SMO_INNER: usize = 8;

/// Kernel-approximation policy for the Gram-matrix consumers (OCSVM
/// training, KMM weight solve).
///
/// `Exact` is the historical dense path, unchanged bit-for-bit. The two
/// approximate variants trade a bounded amount of accuracy for
/// sub-quadratic cost; see the crate's accuracy property-tests for the
/// bounds that are pinned. `Auto` (the default) stays exact up to
/// [`KernelApprox::AUTO_EXACT_LIMIT`] rows and only switches above that,
/// so default-configured paper-scale runs never change value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum KernelApprox {
    /// Dense pairwise kernels — the historical path.
    Exact,
    /// Nyström landmark approximation with the given target rank
    /// (clamped to the population size at fit time).
    Nystrom {
        /// Number of landmark rows (and feature dimensions).
        rank: usize,
    },
    /// Random Fourier features (RBF kernels only) with the given number
    /// of cosine features.
    Rff {
        /// Number of random Fourier features `D`.
        features: usize,
    },
    /// Size-threshold policy: exact up to
    /// [`KernelApprox::AUTO_EXACT_LIMIT`] rows, then
    /// [`KernelApprox::Rff`] for RBF kernels and [`KernelApprox::Nystrom`]
    /// for everything else.
    #[default]
    Auto,
}

impl KernelApprox {
    /// Largest population the `Auto` policy still solves exactly. Matches
    /// the OCSVM's dense-Gram limit, so `Auto` never changes the value of
    /// a run that previously fit the dense path.
    pub const AUTO_EXACT_LIMIT: usize = 4096;

    /// Feature count the `Auto` policy picks for RBF kernels.
    pub const AUTO_RFF_FEATURES: usize = 256;

    /// Landmark rank the `Auto` policy picks for non-RBF kernels.
    pub const AUTO_NYSTROM_RANK: usize = 128;

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for a zero rank or zero
    /// feature count.
    pub fn validate(&self) -> Result<(), StatsError> {
        match *self {
            KernelApprox::Nystrom { rank: 0 } => Err(StatsError::InvalidParameter {
                name: "approx.rank",
                reason: "Nyström rank must be at least 1".into(),
            }),
            KernelApprox::Rff { features: 0 } => Err(StatsError::InvalidParameter {
                name: "approx.features",
                reason: "RFF feature count must be at least 1".into(),
            }),
            _ => Ok(()),
        }
    }

    /// Resolves the policy for a fit over `n` rows under `kernel`:
    /// `Auto` becomes one of the three concrete variants, which pass
    /// through unchanged.
    pub fn resolve(&self, n: usize, kernel: &Kernel) -> KernelApprox {
        match *self {
            KernelApprox::Auto => {
                if n <= Self::AUTO_EXACT_LIMIT {
                    KernelApprox::Exact
                } else if matches!(kernel, Kernel::Rbf { .. }) {
                    KernelApprox::Rff {
                        features: Self::AUTO_RFF_FEATURES,
                    }
                } else {
                    KernelApprox::Nystrom {
                        rank: Self::AUTO_NYSTROM_RANK,
                    }
                }
            }
            concrete => concrete,
        }
    }
}

/// Deterministic landmark choice: a partial Fisher–Yates shuffle driven by
/// [`sidefp_parallel::fork_seed`] streams, returning `rank` distinct row
/// indices in ascending order. A pure function of `(n, rank, seed)`.
fn select_landmarks(n: usize, rank: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for j in 0..rank.min(n) {
        let span = (n - j) as u64;
        let pick = j + (sidefp_parallel::fork_seed(seed, j as u64) % span) as usize;
        idx.swap(j, pick);
    }
    let mut out = idx[..rank.min(n)].to_vec();
    out.sort_unstable();
    out
}

/// The internals that differ between the two approximation routes.
#[derive(Debug, Clone)]
enum MapKind {
    Nystrom {
        /// The landmark rows themselves, `r × d`.
        landmarks: Matrix,
        /// `U Λ^{-1/2}` of the landmark Gram, `r × r`.
        factor: Matrix,
        /// Ascending indices of the landmarks in the fitted data.
        landmark_indices: Vec<usize>,
    },
    Rff {
        /// Frequency rows `ω_j`, one per feature: `D × d`.
        omega: Matrix,
        /// Phase offsets `b_j ∈ [0, 2π)`, one per feature.
        offsets: Vec<f64>,
        /// Normalization `√(2/D)`.
        scale: f64,
    },
}

/// An explicit finite-dimensional feature map approximating a kernel:
/// `k(x, y) ≈ ⟨φ(x), φ(y)⟩`.
///
/// Construction embeds the fitted data once (`Φ`, `n × r`); new rows are
/// embedded on demand with [`KernelFeatureMap::embed_rows`]. Gram-vector
/// products collapse to two thin GEMV passes (`Φ(Φᵀv)`), which is what
/// makes the KMM solve and the SMO working-set refreshes sub-quadratic.
#[derive(Debug, Clone)]
pub struct KernelFeatureMap {
    kernel: Kernel,
    kind: MapKind,
    features: Matrix,
}

impl KernelFeatureMap {
    /// Builds a Nyström feature map of the given target rank over `data`'s
    /// rows. `rank` is clamped to the number of rows; landmark selection
    /// is deterministic in `(data size, rank, seed)`.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InvalidParameter`] for an invalid kernel, a zero
    ///   rank, or non-finite data.
    /// - [`StatsError::InsufficientData`] for an empty data matrix.
    /// - [`StatsError::Linalg`] when the landmark Gram has no positive
    ///   eigenvalue (identically zero kernel).
    pub fn nystrom(
        kernel: Kernel,
        data: &Matrix,
        rank: usize,
        seed: u64,
    ) -> Result<Self, StatsError> {
        kernel.validate()?;
        KernelApprox::Nystrom { rank }.validate()?;
        let n = data.nrows();
        if n == 0 || data.ncols() == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        check_finite_matrix("data", data)?;
        let landmark_indices = select_landmarks(n, rank, seed);
        let landmarks = data.select_rows(&landmark_indices);
        let w = GramMatrix::symmetric(kernel, &landmarks);
        let factor = lowrank::inverse_sqrt_factor(w.matrix(), lowrank::REL_EIGEN_CLIP)?;
        let cross = GramMatrix::cross(kernel, data, &landmarks)?;
        let features = cross.matmul(&factor)?;
        Ok(KernelFeatureMap {
            kernel,
            kind: MapKind::Nystrom {
                landmarks,
                factor,
                landmark_indices,
            },
            features,
        })
    }

    /// Builds a random-Fourier-feature map with `features` cosine features
    /// over `data`'s rows. Each feature draws its frequencies and phase
    /// from its own forked RNG stream, so the map is a pure function of
    /// `(kernel, data shape, features, seed)` at any thread count.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InvalidParameter`] if the kernel is not RBF, the
    ///   feature count is zero, or the data is non-finite.
    /// - [`StatsError::InsufficientData`] for an empty data matrix.
    pub fn rff(
        kernel: Kernel,
        data: &Matrix,
        features: usize,
        seed: u64,
    ) -> Result<Self, StatsError> {
        kernel.validate()?;
        KernelApprox::Rff { features }.validate()?;
        let Kernel::Rbf { gamma } = kernel else {
            return Err(StatsError::InvalidParameter {
                name: "approx",
                reason: "random Fourier features require an RBF kernel".into(),
            });
        };
        let n = data.nrows();
        let d = data.ncols();
        if n == 0 || d == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        check_finite_matrix("data", data)?;
        // Bochner: exp(−γ‖δ‖²) = E[cos(ωᵀδ)] for ω ~ N(0, 2γ I).
        let sd = (2.0 * gamma).sqrt();
        let draws: Vec<Vec<f64>> = sidefp_parallel::map_indexed(features, |j| {
            let mut rng = StdRng::seed_from_u64(sidefp_parallel::fork_seed(seed, j as u64));
            let mut vals = Vec::with_capacity(d + 1);
            for _ in 0..d {
                vals.push(MultivariateNormal::standard_normal(&mut rng) * sd);
            }
            let u: f64 = rng.random();
            vals.push(u * std::f64::consts::TAU);
            vals
        });
        let omega = Matrix::from_fn(features, d, |j, t| draws[j][t]);
        let offsets: Vec<f64> = draws.iter().map(|v| v[d]).collect();
        let scale = (2.0 / features as f64).sqrt();
        let features_mat = rff_embed(&omega, &offsets, scale, data)?;
        Ok(KernelFeatureMap {
            kernel,
            kind: MapKind::Rff {
                omega,
                offsets,
                scale,
            },
            features: features_mat,
        })
    }

    /// The kernel this map approximates.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The embedded fitted data `Φ` (`n × r`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Feature dimension `r` of the map.
    pub fn feature_count(&self) -> usize {
        self.features.ncols()
    }

    /// Number of fitted rows.
    pub fn len(&self) -> usize {
        self.features.nrows()
    }

    /// `true` when no rows were fitted.
    pub fn is_empty(&self) -> bool {
        self.features.nrows() == 0
    }

    /// Ascending landmark indices (Nyström maps only).
    pub fn landmark_indices(&self) -> Option<&[usize]> {
        match &self.kind {
            MapKind::Nystrom {
                landmark_indices, ..
            } => Some(landmark_indices),
            MapKind::Rff { .. } => None,
        }
    }

    /// Embeds new rows into the feature space: returns `Φ(x)` with one
    /// feature row per input row.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x`'s column count
    /// differs from the fitted data's.
    pub fn embed_rows(&self, x: &Matrix) -> Result<Matrix, StatsError> {
        match &self.kind {
            MapKind::Nystrom {
                landmarks, factor, ..
            } => {
                let cross = GramMatrix::cross(self.kernel, x, landmarks)?;
                Ok(cross.matmul(factor)?)
            }
            MapKind::Rff {
                omega,
                offsets,
                scale,
            } => {
                if x.ncols() != omega.ncols() {
                    return Err(StatsError::DimensionMismatch {
                        expected: omega.ncols(),
                        got: x.ncols(),
                    });
                }
                rff_embed(omega, offsets, *scale, x)
            }
        }
    }

    /// Squared feature norms `‖φ_i‖²` of the fitted rows — the diagonal of
    /// the approximate Gram matrix.
    pub fn feature_sq_norms(&self) -> Vec<f64> {
        let phi = &self.features;
        sidefp_parallel::map_indexed(phi.nrows(), |i| vecops::sq_norm(phi.row(i)))
    }

    /// The full approximate Gram matrix `Φ Φᵀ` (`n × n`) — intended for
    /// tests and small-`n` diagnostics, not production paths.
    ///
    /// # Errors
    ///
    /// Propagates matrix-multiplication shape errors (cannot happen for a
    /// well-formed map).
    pub fn approx_gram(&self) -> Result<Matrix, StatsError> {
        Ok(self.features.matmul_nt(&self.features)?)
    }

    /// Converts a feature-space linear functional `w` into the standalone
    /// parts of a decision function `f(x) = ⟨w, φ(x)⟩`:
    ///
    /// - Nyström collapses exactly to a kernel expansion over the
    ///   landmarks (`coeffs = U Λ^{-1/2} w`), the same form as an exact
    ///   SVM's support-vector expansion;
    /// - RFF keeps `w` and hands back the feature parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::Linalg`] on a `w` length mismatch.
    pub(crate) fn decision_parts(&self, w: &[f64]) -> Result<DecisionParts, StatsError> {
        match &self.kind {
            MapKind::Nystrom {
                landmarks, factor, ..
            } => Ok(DecisionParts::Expansion {
                points: landmarks.clone(),
                coeffs: factor.matvec(w)?,
            }),
            MapKind::Rff {
                omega,
                offsets,
                scale,
            } => Ok(DecisionParts::Random {
                omega: omega.clone(),
                offsets: offsets.clone(),
                scale: *scale,
                w: w.to_vec(),
            }),
        }
    }
}

/// Standalone decision-function parts produced by
/// [`KernelFeatureMap::decision_parts`].
pub(crate) enum DecisionParts {
    /// `f(x) = Σ_l coeffs_l · k(points_l, x)` — the classic expansion.
    Expansion {
        /// Expansion points (the Nyström landmarks).
        points: Matrix,
        /// Expansion coefficients.
        coeffs: Vec<f64>,
    },
    /// `f(x) = Σ_j w_j · scale · cos(ω_jᵀx + b_j)` — random features.
    Random {
        /// Frequency rows, one per feature.
        omega: Matrix,
        /// Phase offsets, one per feature.
        offsets: Vec<f64>,
        /// Normalization `√(2/D)`.
        scale: f64,
        /// Feature-space weights.
        w: Vec<f64>,
    },
}

/// `cos(X Ωᵀ + b) · scale` — the projection runs on the packed GEMM's
/// transposed-B path (no materialized `Ωᵀ`), the element-wise cosine map
/// fans rows out across the worker pool (each output element depends only
/// on its own row, so the result is bit-identical at any thread count).
fn rff_embed(
    omega: &Matrix,
    offsets: &[f64],
    scale: f64,
    x: &Matrix,
) -> Result<Matrix, StatsError> {
    let mut p = x.matmul_nt(omega)?;
    let ncols = p.ncols();
    sidefp_parallel::for_each_row_mut(p.as_mut_slice(), ncols, |_, row| {
        for (v, b) in row.iter_mut().zip(offsets) {
            *v = (*v + b).cos() * scale;
        }
    });
    Ok(p)
}

/// Sentinel for "no owner" in [`LowRankQ`]'s slot bookkeeping.
const NONE: usize = usize::MAX;

/// [`WorkingSetQ`] backend over an explicit feature map: serves rows of
/// the approximate SMO matrix `Q[i][j] = ⟨φ_i, φ_j⟩` from a small LRU
/// slot set (recomputed on miss at `O(n·r)` instead of `O(n·d)` kernel
/// evaluations), with the one-off mat-vec collapsed to `Φ(Φᵀα)`.
///
/// This makes the approximate paths drop-in swappable with the dense
/// Gram and [`crate::KernelRowCache`] backends behind the same solver.
#[derive(Debug)]
pub struct LowRankQ<'a> {
    features: &'a Matrix,
    diag: Vec<f64>,
    slots: Vec<Vec<f64>>,
    owner: Vec<usize>,
    stamp: Vec<u64>,
    clock: u64,
    misses: usize,
}

impl<'a> LowRankQ<'a> {
    /// Creates a row source over the fitted feature rows of `map`,
    /// holding at most `capacity` rows (clamped like
    /// [`crate::KernelRowCache::new`]).
    pub fn new(map: &'a KernelFeatureMap, capacity: usize) -> Self {
        let features = map.features();
        let n = features.nrows();
        let capacity = capacity.max(2).min(n.max(2));
        let diag = (0..n).map(|i| vecops::sq_norm(features.row(i))).collect();
        LowRankQ {
            features,
            diag,
            slots: vec![Vec::new(); capacity],
            owner: vec![NONE; capacity],
            stamp: vec![0; capacity],
            clock: 0,
            misses: 0,
        }
    }

    /// Number of rows recomputed because they were not cached.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Ensures row `i` is materialized and returns its slot, never
    /// evicting the row owned by `protect`.
    fn ensure(&mut self, i: usize, protect: usize) -> usize {
        self.clock += 1;
        if let Some(slot) = self.owner.iter().position(|&o| o == i) {
            self.stamp[slot] = self.clock;
            return slot;
        }
        self.misses += 1;
        let mut victim = NONE;
        for s in 0..self.owner.len() {
            if self.owner[s] == protect && protect != NONE {
                continue;
            }
            if victim == NONE || self.stamp[s] < self.stamp[victim] {
                victim = s;
            }
        }
        let features = self.features;
        let xi = features.row(i);
        let row = &mut self.slots[victim];
        row.clear();
        row.reserve(features.nrows());
        for fj in features.rows_iter() {
            row.push(vecops::dot(xi, fj));
        }
        self.owner[victim] = i;
        self.stamp[victim] = self.clock;
        victim
    }
}

impl WorkingSetQ for LowRankQ<'_> {
    fn len(&self) -> usize {
        self.features.nrows()
    }

    fn diag(&mut self, i: usize) -> f64 {
        self.diag[i]
    }

    fn pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]) {
        let si = self.ensure(i, NONE);
        let sj = self.ensure(j, i);
        (&self.slots[si], &self.slots[sj])
    }

    fn matvec(&mut self, alpha: &[f64]) -> Result<Vec<f64>, StatsError> {
        let n = self.features.nrows();
        if alpha.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                got: alpha.len(),
            });
        }
        // Φ(Φᵀα): the sequential accumulation of w keeps the result a pure
        // function of (Φ, α); the outer products are per-row independent.
        let mut w = vec![0.0; self.features.ncols()];
        for (i, row) in self.features.rows_iter().enumerate() {
            vecops::axpy_mut(&mut w, alpha[i], row);
        }
        let features = self.features;
        Ok(sidefp_parallel::map_indexed(n, |i| {
            vecops::dot(features.row(i), &w)
        }))
    }
}

/// Deterministic working-set selection for [`solve_feature_smo`]: the
/// `cap/2` most violating coordinates from each side (smallest gradients
/// free to increase, largest free to decrease), merged and sorted.
fn select_block(alpha: &[f64], grad: &[f64], c: f64, cap: usize) -> Vec<usize> {
    let n = alpha.len();
    let mut ups: Vec<usize> = (0..n).filter(|&t| alpha[t] < c - 1e-15).collect();
    let mut downs: Vec<usize> = (0..n).filter(|&t| alpha[t] > 1e-15).collect();
    let half = cap.div_ceil(2);
    // Partial selection of the `half` most violating coordinates per side:
    // a full sort of both candidate lists is O(n log n) per round and
    // dominates at large n. The (gradient, index) comparator is a total
    // order, so the selected *set* is unique — identical to what the full
    // sort would pick — regardless of partition internals.
    if ups.len() > half {
        ups.select_nth_unstable_by(half - 1, |&a, &b| {
            grad[a].total_cmp(&grad[b]).then(a.cmp(&b))
        });
        ups.truncate(half);
    }
    if downs.len() > half {
        downs.select_nth_unstable_by(half - 1, |&a, &b| {
            grad[b].total_cmp(&grad[a]).then(a.cmp(&b))
        });
        downs.truncate(half);
    }
    let mut block: Vec<usize> = ups.into_iter().chain(downs).collect();
    block.sort_unstable();
    block.dedup();
    block
}

/// Decomposition SMO in feature space: solves `min ½αᵀ(ΦΦᵀ)α` over
/// `Σα = 1`, `0 ≤ α_i ≤ C` without ever materializing `ΦΦᵀ`.
///
/// Each outer round refreshes the exact gradient `Φ(Φᵀα)` in `O(n·r)`,
/// checks global KKT optimality, then runs a budgeted exact SMO on a
/// small dense block of the most violating coordinates. All reductions
/// are fixed-order, so the trajectory is bit-identical at any thread
/// count.
///
/// # Errors
///
/// Same contract as [`crate::qp::SmoSolver::solve`]: invalid/infeasible
/// `upper` is rejected; budget exhaustion returns a best-effort solution
/// with `converged = false` instead of an error.
pub(crate) fn solve_feature_smo(
    phi: &Matrix,
    config: &SmoConfig,
) -> Result<SmoSolution, StatsError> {
    let n = phi.nrows();
    let c = config.upper;
    if c <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "upper",
            reason: format!("must be positive, got {c}"),
        });
    }
    if (c * n as f64) < 1.0 - 1e-12 {
        return Err(StatsError::InvalidParameter {
            name: "upper",
            reason: format!("infeasible: upper * n = {} < 1", c * n as f64),
        });
    }

    // Feasible start: uniform, clipped, mass-repaired (see SmoSolver).
    let mut alpha = vec![(1.0 / n as f64).min(c); n];
    let mass: f64 = alpha.iter().sum();
    if (mass - 1.0).abs() > 1e-12 {
        let scale = 1.0 / mass;
        for a in &mut alpha {
            *a *= scale;
        }
    }

    // w = Φᵀα is built once (sequential, fixed order) and then maintained
    // incrementally: a block round changes at most `block_cap` alphas, so
    // the per-round update is O(block·r) instead of the O(n·r) rebuild
    // that would otherwise dominate every round at large n. The update
    // order is fixed, so the accumulated rounding is bit-reproducible.
    let mut w = vec![0.0; phi.ncols()];
    for (i, row) in phi.rows_iter().enumerate() {
        if alpha[i] != 0.0 {
            vecops::axpy_mut(&mut w, alpha[i], row);
        }
    }
    let mut grad = vec![0.0; n];
    let mut iterations = 0usize;
    let mut converged = false;
    let kkt_gap;
    let block_cap = FEATURE_SMO_BLOCK.min(n.max(2));

    loop {
        // Gradient refresh from the maintained w: grad_i = ⟨φ_i, w⟩
        // (per-element independent, so the parallel map is deterministic).
        let fresh = {
            let w = &w;
            sidefp_parallel::map_indexed(n, |i| vecops::dot(phi.row(i), w))
        };
        grad.copy_from_slice(&fresh);

        let (i_best, g_min, j_best, g_max) = select_pair(&alpha, &grad, c);
        if i_best == NONE || j_best == NONE {
            kkt_gap = 0.0;
            converged = true;
            break;
        }
        let gap = (g_max - g_min).max(0.0);
        if gap < config.tol {
            kkt_gap = gap;
            converged = true;
            break;
        }
        if iterations >= config.max_iter {
            kkt_gap = gap;
            break;
        }

        // Dense sub-problem on the most violating block. The global MVP
        // pair is always inside it, so a round either makes progress or
        // proves the pair numerically stuck.
        let block = select_block(&alpha, &grad, c, block_cap);
        let b = block.len();
        let mut qb = Matrix::zeros(b, b);
        for s in 0..b {
            let row_s = phi.row(block[s]);
            for t in s..b {
                let v = vecops::dot(row_s, phi.row(block[t]));
                qb[(s, t)] = v;
                qb[(t, s)] = v;
            }
        }
        let mut a_loc: Vec<f64> = block.iter().map(|&t| alpha[t]).collect();
        let mut g_loc: Vec<f64> = block.iter().map(|&t| grad[t]).collect();
        let mut updates = 0usize;
        for _ in 0..FEATURE_SMO_INNER * b {
            if iterations >= config.max_iter {
                break;
            }
            let (li, lg_min, lj, lg_max) = select_pair(&a_loc, &g_loc, c);
            if li == NONE || lj == NONE || lg_max - lg_min < config.tol {
                break;
            }
            let denom = qb[(li, li)] + qb[(lj, lj)] - 2.0 * qb[(li, lj)];
            let mut delta = if denom > 1e-12 {
                (g_loc[lj] - g_loc[li]) / denom
            } else {
                f64::INFINITY
            };
            delta = delta.min(c - a_loc[li]).min(a_loc[lj]);
            if delta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                break;
            }
            a_loc[li] += delta;
            a_loc[lj] -= delta;
            for t in 0..b {
                g_loc[t] += delta * (qb[(li, t)] - qb[(lj, t)]);
            }
            updates += 1;
            iterations += 1;
        }
        if updates == 0 {
            // The globally most violating pair is numerically stuck:
            // mirror SmoSolver and treat the iterate as converged.
            kkt_gap = gap;
            converged = true;
            break;
        }
        for (t, &idx) in block.iter().enumerate() {
            let delta = a_loc[t] - alpha[idx];
            if delta != 0.0 {
                vecops::axpy_mut(&mut w, delta, phi.row(idx));
            }
            alpha[idx] = a_loc[t];
        }
    }

    Ok(SmoSolution {
        alpha,
        gradient: grad,
        iterations,
        converged,
        kkt_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::SmoSolver;

    fn sample(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| {
            ((i * 13 + j * 5) % 17) as f64 * 0.21 - 1.6 + (i as f64 * 0.37).sin()
        })
    }

    #[test]
    fn landmark_selection_is_deterministic_sorted_distinct() {
        let a = select_landmarks(100, 17, 42);
        let b = select_landmarks(100, 17, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 17);
        for pair in a.windows(2) {
            assert!(pair[0] < pair[1], "not strictly ascending: {a:?}");
        }
        assert!(a.iter().all(|&i| i < 100));
        let c = select_landmarks(100, 17, 43);
        assert_ne!(a, c, "seed should matter");
        // Rank clamps to n.
        assert_eq!(select_landmarks(5, 9, 1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_rank_nystrom_reconstructs_gram() {
        let data = sample(20, 4);
        let kernel = Kernel::Rbf { gamma: 0.7 };
        let map = KernelFeatureMap::nystrom(kernel, &data, 20, 7).unwrap();
        let approx = map.approx_gram().unwrap();
        let exact = GramMatrix::symmetric(kernel, &data);
        for i in 0..20 {
            for j in 0..20 {
                assert!(
                    (approx[(i, j)] - exact.matrix()[(i, j)]).abs() < 1e-8,
                    "({i},{j}): {} vs {}",
                    approx[(i, j)],
                    exact.matrix()[(i, j)]
                );
            }
        }
    }

    #[test]
    fn nystrom_works_for_linear_kernel() {
        let data = sample(15, 3);
        let map = KernelFeatureMap::nystrom(Kernel::Linear, &data, 15, 3).unwrap();
        let approx = map.approx_gram().unwrap();
        let exact = GramMatrix::symmetric(Kernel::Linear, &data);
        for i in 0..15 {
            for j in 0..15 {
                assert!((approx[(i, j)] - exact.matrix()[(i, j)]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn rff_error_shrinks_with_more_features() {
        let data = sample(30, 5);
        let kernel = Kernel::Rbf { gamma: 0.5 };
        let exact = GramMatrix::symmetric(kernel, &data);
        let err = |features: usize| {
            let map = KernelFeatureMap::rff(kernel, &data, features, 11).unwrap();
            let approx = map.approx_gram().unwrap();
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..30 {
                for j in 0..30 {
                    num += (approx[(i, j)] - exact.matrix()[(i, j)]).powi(2);
                    den += exact.matrix()[(i, j)].powi(2);
                }
            }
            (num / den).sqrt()
        };
        let coarse = err(32);
        let fine = err(2048);
        assert!(fine < 0.1, "D=2048 rel error {fine}");
        assert!(fine < coarse, "error should shrink: {coarse} -> {fine}");
    }

    #[test]
    fn rff_rejects_non_rbf_kernels() {
        let data = sample(6, 2);
        assert!(matches!(
            KernelFeatureMap::rff(Kernel::Linear, &data, 8, 1),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn embed_rows_matches_fitted_features() {
        let data = sample(12, 3);
        let kernel = Kernel::Rbf { gamma: 0.9 };
        for map in [
            KernelFeatureMap::nystrom(kernel, &data, 8, 5).unwrap(),
            KernelFeatureMap::rff(kernel, &data, 16, 5).unwrap(),
        ] {
            let re = map.embed_rows(&data).unwrap();
            assert_eq!(re.shape(), map.features().shape());
            for i in 0..12 {
                for j in 0..map.feature_count() {
                    assert!(
                        (re[(i, j)] - map.features()[(i, j)]).abs() < 1e-10,
                        "({i},{j})"
                    );
                }
            }
            let narrow = Matrix::zeros(2, 2);
            assert!(map.embed_rows(&narrow).is_err());
        }
    }

    #[test]
    fn auto_policy_resolution() {
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert_eq!(
            KernelApprox::Auto.resolve(1000, &rbf),
            KernelApprox::Exact,
            "paper-scale populations stay exact"
        );
        assert_eq!(
            KernelApprox::Auto.resolve(KernelApprox::AUTO_EXACT_LIMIT, &rbf),
            KernelApprox::Exact
        );
        assert_eq!(
            KernelApprox::Auto.resolve(KernelApprox::AUTO_EXACT_LIMIT + 1, &rbf),
            KernelApprox::Rff {
                features: KernelApprox::AUTO_RFF_FEATURES
            }
        );
        assert_eq!(
            KernelApprox::Auto.resolve(10_000, &Kernel::Linear),
            KernelApprox::Nystrom {
                rank: KernelApprox::AUTO_NYSTROM_RANK
            }
        );
        // Concrete variants pass through.
        assert_eq!(
            KernelApprox::Exact.resolve(1_000_000, &rbf),
            KernelApprox::Exact
        );
        assert_eq!(
            KernelApprox::Nystrom { rank: 64 }.resolve(10, &rbf),
            KernelApprox::Nystrom { rank: 64 }
        );
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(KernelApprox::Nystrom { rank: 0 }.validate().is_err());
        assert!(KernelApprox::Rff { features: 0 }.validate().is_err());
        assert!(KernelApprox::Auto.validate().is_ok());
        assert!(KernelApprox::Exact.validate().is_ok());
    }

    #[test]
    fn low_rank_q_matches_dense_approximate_gram() {
        let data = sample(18, 3);
        let map = KernelFeatureMap::nystrom(Kernel::Rbf { gamma: 0.6 }, &data, 10, 9).unwrap();
        let dense = map.approx_gram().unwrap();
        let mut q = LowRankQ::new(&map, 3);
        // approx_gram goes through the blocked GEMM while the row source
        // uses per-row dots: identical values up to O(ε) rounding.
        for i in [0usize, 7, 17, 3, 7] {
            assert!((WorkingSetQ::diag(&mut q, i) - dense[(i, i)]).abs() < 1e-12);
        }
        let (qi, qj) = q.pair(2, 5);
        for t in 0..18 {
            assert!((qi[t] - dense[(2, t)]).abs() < 1e-12);
            assert!((qj[t] - dense[(5, t)]).abs() < 1e-12);
        }
        let alpha: Vec<f64> = (0..18).map(|i| 1.0 / (i + 2) as f64).collect();
        let got = q.matvec(&alpha).unwrap();
        let want = dense.matvec(&alpha).unwrap();
        for (g, e) in got.iter().zip(&want) {
            assert!((g - e).abs() < 1e-10);
        }
        assert!(q.matvec(&[1.0]).is_err());
    }

    #[test]
    fn smo_over_low_rank_q_matches_dense_solve() {
        let data = sample(30, 3);
        let map = KernelFeatureMap::nystrom(Kernel::Rbf { gamma: 0.8 }, &data, 12, 13).unwrap();
        let config = SmoConfig {
            upper: 1.0 / (0.2 * 30.0),
            tol: 1e-6,
            max_iter: 50_000,
        };
        let solver = SmoSolver::new(config);
        let dense = map.approx_gram().unwrap();
        let want = solver.solve(&dense).unwrap();
        let mut q = LowRankQ::new(&map, 8);
        let got = solver.solve_with(&mut q).unwrap();
        assert!(got.converged);
        // The dense Gram is GEMM-form, the row source is per-row dots, so
        // the trajectories differ by O(ε) compounding — same tolerance as
        // the KernelRowCache-vs-dense test.
        for (a, b) in got.alpha.iter().zip(&want.alpha) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn feature_smo_matches_dense_smo_objective() {
        let data = sample(60, 4);
        let map = KernelFeatureMap::nystrom(Kernel::Rbf { gamma: 0.5 }, &data, 20, 3).unwrap();
        let config = SmoConfig {
            upper: 1.0 / (0.1 * 60.0),
            tol: 1e-7,
            max_iter: 100_000,
        };
        let dense = map.approx_gram().unwrap();
        let want = SmoSolver::new(config).solve(&dense).unwrap();
        let got = solve_feature_smo(map.features(), &config).unwrap();
        assert!(got.converged, "gap {}", got.kkt_gap);
        let mass: f64 = got.alpha.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        assert!(got
            .alpha
            .iter()
            .all(|a| *a >= -1e-12 && *a <= config.upper + 1e-12));
        let objective = |alpha: &[f64]| {
            let qa = dense.matvec(alpha).unwrap();
            0.5 * alpha.iter().zip(&qa).map(|(a, b)| a * b).sum::<f64>()
        };
        let (fo, do_) = (objective(&got.alpha), objective(&want.alpha));
        assert!(
            fo <= do_ + 1e-6 * do_.abs().max(1.0),
            "feature-smo objective {fo} worse than dense {do_}"
        );
        // The reported gradient is the exact Qα of the final iterate.
        let qa = dense.matvec(&got.alpha).unwrap();
        for (g, e) in got.gradient.iter().zip(&qa) {
            assert!((g - e).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_smo_rejects_bad_upper() {
        let phi = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let bad = SmoConfig {
            upper: -1.0,
            ..Default::default()
        };
        assert!(solve_feature_smo(&phi, &bad).is_err());
        let infeasible = SmoConfig {
            upper: 0.2,
            ..Default::default()
        };
        assert!(solve_feature_smo(&phi, &infeasible).is_err());
    }

    #[test]
    fn feature_smo_bit_identical_across_thread_counts() {
        let data = sample(80, 4);
        let map = KernelFeatureMap::rff(Kernel::Rbf { gamma: 0.4 }, &data, 64, 21).unwrap();
        let config = SmoConfig {
            upper: 1.0 / (0.1 * 80.0),
            tol: 1e-7,
            max_iter: 100_000,
        };
        let one = sidefp_parallel::with_threads(1, || {
            solve_feature_smo(map.features(), &config).unwrap()
        });
        let eight = sidefp_parallel::with_threads(8, || {
            solve_feature_smo(map.features(), &config).unwrap()
        });
        assert_eq!(one.iterations, eight.iterations);
        for (a, b) in one.alpha.iter().zip(&eight.alpha) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn feature_map_construction_bit_identical_across_thread_counts() {
        let data = sample(50, 5);
        let kernel = Kernel::Rbf { gamma: 0.6 };
        type MapBuilder = Box<dyn Fn(&Matrix) -> KernelFeatureMap>;
        let builders: [MapBuilder; 2] = [
            Box::new(move |d| KernelFeatureMap::nystrom(kernel, d, 16, 31).unwrap()),
            Box::new(move |d| KernelFeatureMap::rff(kernel, d, 48, 31).unwrap()),
        ];
        for build in builders {
            let one = sidefp_parallel::with_threads(1, || build(&data));
            let eight = sidefp_parallel::with_threads(8, || build(&data));
            let (a, b) = (one.features().as_slice(), eight.features().as_slice());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
