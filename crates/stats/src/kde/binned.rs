//! Binned evaluation of the adaptive Epanechnikov KDE.
//!
//! The Epanechnikov kernel has compact support: observation `i` contributes
//! to the density at `x` only when `‖z(x) − z_i‖ < h·λ_i`. A dense
//! evaluation still sums all `m` terms per query; [`BinnedKde`] instead
//! indexes the observations by a coarse grid so each query touches only the
//! observations whose support can reach it — `O(local neighborhood)` per
//! query instead of `O(m)`.
//!
//! Because the adaptive radii `h·λ_i` vary per observation, a single grid
//! resolution cannot bound the reach of every kernel. Observations are
//! therefore split into dyadic **bands** by radius; band `b` holds radii in
//! `(R_max/2^{b+1}, R_max/2^b]` (the last band absorbs the tail) and is
//! gridded at cell size `R_max/2^b`, so any contributing observation lies
//! within ±1 cell of the query in every gridded dimension. The grid spans
//! the first `min(d, 3)` coordinates; higher dimensions are not pruned
//! (the kernel term itself exits early past the support boundary).
//!
//! Every sum iterates bands, neighbor cells and members in a fixed order,
//! so the evaluator is bit-deterministic at any thread count. The summation
//! grouping differs from the dense path's blocked reduction, so binned and
//! dense densities agree to roundoff (relative `O(ε)`), not bit-for-bit.

use crate::kde::AdaptiveKde;
use crate::StatsError;
use sidefp_linalg::Matrix;

/// Number of dyadic radius bands. Four bands cover a 16× spread of local
/// bandwidth factors; rarer, even-wider kernels land in the last band and
/// merely make its cells slightly conservative.
const BANDS: usize = 4;

/// Grid dimensionality cap: cells are formed over the first
/// `min(d, GRID_DIMS_MAX)` z-space coordinates.
const GRID_DIMS_MAX: usize = 3;

/// Bits per packed grid coordinate (3 × 21 = 63 bits in a `u64`).
const COORD_BITS: u32 = 21;

/// Coordinate offset making packed coordinates non-negative; coordinates
/// clamp to `[-COORD_OFFSET, COORD_OFFSET - 1]`. Clamping is monotone and
/// 1-Lipschitz, so truly adjacent cells stay adjacent after clamping — far
/// ends of the clamp range can only *add* candidate members (whose kernel
/// terms evaluate to zero), never lose one.
const COORD_OFFSET: i64 = 1 << 20;

/// One radius band: a uniform grid at `cell` resolution stored as a sorted
/// cell table with CSR member lists.
#[derive(Debug, Clone)]
struct Band {
    /// Cell edge length (equals the band's maximum kernel radius).
    cell: f64,
    /// Sorted, distinct packed cell keys.
    keys: Vec<u64>,
    /// CSR offsets into `members`, one more entry than `keys`.
    starts: Vec<u32>,
    /// Observation indices, ascending within each cell.
    members: Vec<u32>,
}

/// Grid-accelerated evaluator over a fitted [`AdaptiveKde`].
///
/// Construction is `O(m log m)`; each density query costs a constant number
/// of cell lookups plus one kernel term per nearby observation. Values
/// match [`AdaptiveKde::density`] to floating-point roundoff.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::kde::{AdaptiveKde, KdeConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = Matrix::from_rows(&[
///     &[0.0, 0.0], &[0.2, 0.1], &[-0.1, 0.2], &[0.1, -0.2],
///     &[0.0, 0.3], &[-0.2, -0.1], &[0.3, 0.0], &[-0.3, 0.1],
/// ])?;
/// let kde = AdaptiveKde::fit(&data, &KdeConfig::default())?;
/// let binned = kde.binned();
/// let dense = kde.density(&[0.05, 0.05])?;
/// let fast = binned.density(&[0.05, 0.05])?;
/// assert!((dense - fast).abs() < 1e-12 * dense.max(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BinnedKde<'a> {
    kde: &'a AdaptiveKde,
    /// Non-empty bands, in increasing band index (decreasing cell size).
    bands: Vec<Band>,
    /// Number of gridded leading dimensions (`min(d, 3)`).
    grid_dims: usize,
}

/// Grid coordinate of `v` at resolution `cell`, clamped to the packed
/// range. The `as i64` cast saturates, which composes with the clamp.
#[inline]
fn cell_coord(v: f64, cell: f64) -> i64 {
    let c = (v / cell).floor();
    (c as i64).clamp(-COORD_OFFSET, COORD_OFFSET - 1)
}

/// Packs the leading `grid_dims` coordinates of `row` into one key.
#[inline]
fn cell_key(row: &[f64], grid_dims: usize, cell: f64) -> u64 {
    let mut key = 0u64;
    for (j, &v) in row.iter().take(grid_dims).enumerate() {
        let c = (cell_coord(v, cell) + COORD_OFFSET) as u64;
        key |= c << (COORD_BITS * j as u32);
    }
    key
}

impl AdaptiveKde {
    /// Builds the grid-accelerated evaluator for this estimator.
    ///
    /// The evaluator borrows the estimator; it adds `O(m)` index memory and
    /// leaves the estimator untouched.
    pub fn binned(&self) -> BinnedKde<'_> {
        BinnedKde::build(self)
    }
}

impl<'a> BinnedKde<'a> {
    fn build(kde: &'a AdaptiveKde) -> Self {
        let m = kde.len();
        let grid_dims = kde.dim().min(GRID_DIMS_MAX);
        let r_max = (0..m).map(|i| kde.kernel_radius(i)).fold(0.0_f64, f64::max);

        // Partition observations into dyadic radius bands.
        let mut per_band: Vec<Vec<u32>> = vec![Vec::new(); BANDS];
        for i in 0..m {
            let r = kde.kernel_radius(i);
            let b = if r >= r_max {
                0
            } else {
                ((r_max / r).log2().floor() as usize).min(BANDS - 1)
            };
            per_band[b].push(i as u32);
        }

        let bands = per_band
            .into_iter()
            .enumerate()
            .filter(|(_, idx)| !idx.is_empty())
            .map(|(b, idx)| {
                let cell = r_max / (1u64 << b) as f64;
                let mut keyed: Vec<(u64, u32)> = idx
                    .iter()
                    .map(|&i| (cell_key(kde.z_row(i as usize), grid_dims, cell), i))
                    .collect();
                keyed.sort_unstable();
                let mut keys = Vec::new();
                let mut starts = Vec::new();
                let mut members = Vec::with_capacity(keyed.len());
                for (key, i) in keyed {
                    if keys.last() != Some(&key) {
                        keys.push(key);
                        starts.push(members.len() as u32);
                    }
                    members.push(i);
                }
                starts.push(members.len() as u32);
                Band {
                    cell,
                    keys,
                    starts,
                    members,
                }
            })
            .collect();

        BinnedKde {
            kde,
            bands,
            grid_dims,
        }
    }

    /// Number of non-empty radius bands in the index.
    pub fn band_count(&self) -> usize {
        self.bands.len()
    }

    /// Sum of adaptive kernel terms reachable from `zx`, visiting bands,
    /// neighbor cells and members in a fixed order.
    fn local_term_sum(&self, zx: &[f64]) -> f64 {
        let mut sum = 0.0;
        for band in &self.bands {
            let mut base = [0i64; GRID_DIMS_MAX];
            for j in 0..self.grid_dims {
                base[j] = cell_coord(zx[j], band.cell);
            }
            let combos = 3usize.pow(self.grid_dims as u32);
            'combo: for combo in 0..combos {
                let mut key = 0u64;
                let mut rest = combo;
                for (j, b) in base.iter().take(self.grid_dims).enumerate() {
                    let c = b + (rest % 3) as i64 - 1;
                    rest /= 3;
                    if !(-COORD_OFFSET..COORD_OFFSET).contains(&c) {
                        // Out-of-range cells hold no members by construction.
                        continue 'combo;
                    }
                    key |= ((c + COORD_OFFSET) as u64) << (COORD_BITS * j as u32);
                }
                if let Ok(pos) = band.keys.binary_search(&key) {
                    let (lo, hi) = (band.starts[pos] as usize, band.starts[pos + 1] as usize);
                    for &i in &band.members[lo..hi] {
                        sum += self.kde.adaptive_term(i as usize, zx);
                    }
                }
            }
        }
        sum
    }

    /// Adaptive density `f_α(x)` in original units, matching
    /// [`AdaptiveKde::density`] to roundoff.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on length mismatch.
    pub fn density(&self, x: &[f64]) -> Result<f64, StatsError> {
        let zx = self.kde.transform_query(x)?;
        let m = self.kde.len() as f64;
        Ok(self.local_term_sum(&zx) / m / self.kde.jacobian())
    }

    /// Adaptive density at every row of `x`, scored in parallel; values are
    /// bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x`'s column count
    /// differs from the fitted dimension.
    pub fn density_rows(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        if x.ncols() != self.kde.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.kde.dim(),
                got: x.ncols(),
            });
        }
        Ok(sidefp_parallel::map_indexed(x.nrows(), |i| {
            self.density(x.row(i))
                .expect("row width checked against fitted dimension")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kde::KdeConfig;
    use crate::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mvn = MultivariateNormal::independent(vec![0.0; d], &vec![1.0; d]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_matrix(&mut rng, n)
    }

    /// Shared check: binned densities track dense densities to roundoff at
    /// every query row (including queries off the data manifold).
    fn assert_matches_dense(data: &Matrix, queries: &Matrix, cfg: &KdeConfig) {
        let kde = AdaptiveKde::fit(data, cfg).unwrap();
        let binned = kde.binned();
        let dense = kde.density_rows(queries).unwrap();
        let fast = binned.density_rows(queries).unwrap();
        for (i, (a, b)) in dense.iter().zip(&fast).enumerate() {
            let tol = 1e-9 * a.abs().max(1e-300);
            assert!((a - b).abs() <= tol, "row {i}: dense {a} vs binned {b}");
        }
    }

    #[test]
    fn matches_dense_in_low_dimensions() {
        for d in [1, 2, 3] {
            let data = blob(300, d, 20 + d as u64);
            let queries = blob(80, d, 40 + d as u64);
            assert_matches_dense(&data, &queries, &KdeConfig::default());
        }
    }

    #[test]
    fn matches_dense_beyond_gridded_dimensions() {
        // d = 5 > GRID_DIMS_MAX: the suffix dimensions are unpruned but the
        // sum must still be complete.
        let data = blob(250, 5, 31);
        let queries = blob(60, 5, 32);
        assert_matches_dense(&data, &queries, &KdeConfig::default());
    }

    #[test]
    fn matches_dense_with_strong_adaptivity() {
        // α = 1 maximizes the λ spread, pushing observations into multiple
        // radius bands.
        let cfg = KdeConfig {
            alpha: 1.0,
            ..Default::default()
        };
        let data = blob(400, 2, 33);
        let queries = blob(100, 2, 34);
        assert_matches_dense(&data, &queries, &cfg);
        let kde = AdaptiveKde::fit(&data, &cfg).unwrap();
        assert!(kde.binned().band_count() >= 1);
    }

    #[test]
    fn far_queries_score_zero() {
        let kde = AdaptiveKde::fit(&blob(100, 2, 35), &KdeConfig::default()).unwrap();
        let binned = kde.binned();
        assert_eq!(binned.density(&[1e6, -1e6]).unwrap(), 0.0);
    }

    #[test]
    fn dimension_checked() {
        let kde = AdaptiveKde::fit(&blob(50, 2, 36), &KdeConfig::default()).unwrap();
        let binned = kde.binned();
        assert!(binned.density(&[1.0]).is_err());
        assert!(binned.density_rows(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn rows_bit_identical_across_thread_counts() {
        let data = blob(200, 3, 37);
        let queries = blob(64, 3, 38);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let binned = kde.binned();
        let reference = sidefp_parallel::with_threads(1, || binned.density_rows(&queries).unwrap());
        for threads in [2, 8] {
            let got =
                sidefp_parallel::with_threads(threads, || binned.density_rows(&queries).unwrap());
            for (a, b) in reference.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn rows_match_pointwise() {
        let data = blob(120, 2, 39);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let binned = kde.binned();
        let batch = binned.density_rows(&data).unwrap();
        for (i, row) in data.rows_iter().enumerate() {
            assert_eq!(batch[i], binned.density(row).unwrap(), "row {i}");
        }
    }
}
