//! Kernel density estimation and synthetic-sample generation.
//!
//! Implements the paper's tail-modeling step (§2.5, Eq. 5–9): a
//! non-parametric Epanechnikov KDE over the trusted fingerprint population,
//! optionally with **adaptive** per-observation bandwidths that widen at the
//! distribution tails, plus a sampler that generates an arbitrarily large
//! synthetic population from the fitted density.
//!
//! Data is standardized internally (KDE is scale-sensitive); samples are
//! mapped back to original units, so callers never see the z-space.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use sidefp_linalg::Matrix;
//! use sidefp_stats::kde::{AdaptiveKde, KdeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = Matrix::from_rows(&[
//!     &[0.0, 0.0], &[0.2, 0.1], &[-0.1, 0.2], &[0.1, -0.2],
//!     &[0.0, 0.3], &[-0.2, -0.1], &[0.3, 0.0], &[-0.3, 0.1],
//! ])?;
//! let kde = AdaptiveKde::fit(&data, &KdeConfig::default())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let synthetic = kde.sample_matrix(&mut rng, 1000);
//! assert_eq!(synthetic.shape(), (1000, 2));
//! # Ok(())
//! # }
//! ```

mod adaptive;
mod binned;
mod classifier;
mod kernel;

pub use adaptive::{AdaptiveKde, KdeConfig};
pub use binned::BinnedKde;
pub use classifier::DensityClassifier;
pub use kernel::Epanechnikov;
