//! One-class classification by density level set.
//!
//! The paper's trusted region is "a classifier (e.g. neural network,
//! support vector machine, etc.)" — the 1-class SVM being their choice.
//! This module provides the natural alternative: threshold the adaptive
//! KDE itself. The trusted region is `{x : f̂(x) ≥ τ}` with `τ` set at the
//! ν-quantile of the training points' own densities, so a fraction ν of
//! training mass falls outside — the same contract as the ν-SVM.

use sidefp_linalg::Matrix;

use crate::descriptive;
use crate::kde::{AdaptiveKde, KdeConfig};
use crate::StatsError;

/// A one-class classifier: trusted region = KDE density level set.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::kde::{DensityClassifier, KdeConfig};
///
/// # fn main() -> Result<(), sidefp_stats::StatsError> {
/// // A dense 9x9 grid of trusted fingerprints.
/// let train = Matrix::from_fn(81, 2, |i, j| {
///     if j == 0 { (i % 9) as f64 * 0.1 } else { (i / 9) as f64 * 0.1 }
/// });
/// let clf = DensityClassifier::fit(&train, &KdeConfig::default(), 0.05)?;
/// assert!(clf.is_inlier(&[0.4, 0.4])?);
/// assert!(!clf.is_inlier(&[100.0, 100.0])?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DensityClassifier {
    kde: AdaptiveKde,
    threshold: f64,
    nu: f64,
}

impl DensityClassifier {
    /// Fits the KDE and places the level-set threshold at the ν-quantile
    /// of the training points' densities.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InvalidParameter`] for `ν ∉ (0, 1)`.
    /// - KDE fitting errors.
    pub fn fit(data: &Matrix, config: &KdeConfig, nu: f64) -> Result<Self, StatsError> {
        if !(nu > 0.0 && nu < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "nu",
                reason: format!("must be in (0, 1), got {nu}"),
            });
        }
        let kde = AdaptiveKde::fit(data, config)?;
        let densities = data
            .rows_iter()
            .map(|row| kde.density(row))
            .collect::<Result<Vec<f64>, StatsError>>()?;
        let threshold = descriptive::quantile(&densities, nu)?;
        Ok(DensityClassifier { kde, threshold, nu })
    }

    /// The density threshold defining the trusted region.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The ν the classifier was fitted with.
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Signed decision value: `f̂(x) − τ` (positive inside).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for a wrong input length.
    pub fn decision(&self, x: &[f64]) -> Result<f64, StatsError> {
        Ok(self.kde.density(x)? - self.threshold)
    }

    /// `true` if the point lies inside (or on) the trusted level set.
    ///
    /// # Errors
    ///
    /// Same as [`DensityClassifier::decision`].
    pub fn is_inlier(&self, x: &[f64]) -> Result<bool, StatsError> {
        Ok(self.decision(x)? >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(n: usize, seed: u64) -> Matrix {
        let mvn = MultivariateNormal::independent(vec![0.0, 0.0], &[1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_matrix(&mut rng, n)
    }

    #[test]
    fn accepts_bulk_rejects_far() {
        let data = blob(150, 1);
        let clf = DensityClassifier::fit(&data, &KdeConfig::default(), 0.05).unwrap();
        assert!(clf.is_inlier(&[0.0, 0.0]).unwrap());
        assert!(!clf.is_inlier(&[8.0, -8.0]).unwrap());
        assert!(clf.threshold() > 0.0);
        assert_eq!(clf.nu(), 0.05);
    }

    #[test]
    fn training_rejection_close_to_nu() {
        let data = blob(200, 2);
        let clf = DensityClassifier::fit(&data, &KdeConfig::default(), 0.1).unwrap();
        let rejected = data
            .rows_iter()
            .filter(|row| !clf.is_inlier(row).unwrap())
            .count() as f64
            / 200.0;
        assert!(
            (rejected - 0.1).abs() < 0.05,
            "training rejection {rejected}"
        );
    }

    #[test]
    fn decision_is_monotone_in_density() {
        let data = blob(120, 3);
        let clf = DensityClassifier::fit(&data, &KdeConfig::default(), 0.05).unwrap();
        // Walking away from the center monotonically lowers the decision.
        let d0 = clf.decision(&[0.0, 0.0]).unwrap();
        let d2 = clf.decision(&[2.0, 0.0]).unwrap();
        let d4 = clf.decision(&[4.0, 0.0]).unwrap();
        assert!(d0 > d2 && d2 > d4, "{d0} {d2} {d4}");
    }

    #[test]
    fn rejects_bad_nu() {
        let data = blob(50, 4);
        assert!(DensityClassifier::fit(&data, &KdeConfig::default(), 0.0).is_err());
        assert!(DensityClassifier::fit(&data, &KdeConfig::default(), 1.0).is_err());
    }

    #[test]
    fn dimension_checked() {
        let data = blob(50, 5);
        let clf = DensityClassifier::fit(&data, &KdeConfig::default(), 0.05).unwrap();
        assert!(clf.decision(&[1.0]).is_err());
    }
}
