use rand::Rng;

use crate::MultivariateNormal;

/// The multivariate Epanechnikov kernel (paper Eq. 6).
///
/// `K_e(t) = ½·c_d⁻¹·(d+2)·(1 − tᵀt)` for `tᵀt < 1`, zero otherwise, where
/// `c_d` is the volume of the unit `d`-ball. The kernel is the
/// mean-integrated-squared-error-optimal second-order kernel and — unlike a
/// Gaussian — has compact support, which keeps the synthetic tails honest.
///
/// # Example
///
/// ```
/// use sidefp_stats::kde::Epanechnikov;
///
/// let k = Epanechnikov::new(2);
/// assert!(k.density(&[0.0, 0.0]) > 0.0);
/// assert_eq!(k.density(&[1.0, 1.0]), 0.0); // outside the unit ball
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Epanechnikov {
    dim: usize,
    normalization: f64,
}

impl Epanechnikov {
    /// Creates the kernel for dimension `dim` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "Epanechnikov kernel requires dim >= 1");
        let c_d = Self::unit_ball_volume(dim);
        Epanechnikov {
            dim,
            normalization: 0.5 * (dim as f64 + 2.0) / c_d,
        }
    }

    /// Volume of the unit `d`-ball, via the even/odd recursion
    /// `V_d = V_{d−2} · 2π / d` with `V_0 = 1`, `V_1 = 2`.
    pub fn unit_ball_volume(dim: usize) -> f64 {
        match dim {
            0 => 1.0,
            1 => 2.0,
            d => Self::unit_ball_volume(d - 2) * 2.0 * std::f64::consts::PI / d as f64,
        }
    }

    /// Kernel dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Kernel density at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t.len() != dim()`.
    pub fn density(&self, t: &[f64]) -> f64 {
        assert_eq!(t.len(), self.dim, "kernel dimension mismatch");
        let t2: f64 = t.iter().map(|v| v * v).sum();
        if t2 < 1.0 {
            self.normalization * (1.0 - t2)
        } else {
            0.0
        }
    }

    /// Kernel density given the squared radius `tᵀt` directly
    /// (avoids re-computing distances in the KDE hot loop).
    pub fn density_from_sq_radius(&self, t2: f64) -> f64 {
        if t2 < 1.0 {
            self.normalization * (1.0 - t2)
        } else {
            0.0
        }
    }

    /// Draws a random offset distributed according to the kernel.
    ///
    /// Direction: uniform on the `d`-sphere (normalized Gaussian).
    /// Radius: rejection sampling from the marginal `∝ r^{d−1}(1 − r²)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.dim as f64;
        // Mode of the radial density, for the rejection envelope.
        let r_mode = if self.dim == 1 {
            // r^0 (1 - r^2) is maximal at r = 0.
            0.0
        } else {
            ((d - 1.0) / (d + 1.0)).sqrt()
        };
        let f_max = r_mode.powf(d - 1.0).max(f64::MIN_POSITIVE) * (1.0 - r_mode * r_mode);
        let f_max = if self.dim == 1 { 1.0 } else { f_max };

        let radius = loop {
            let r: f64 = rng.random::<f64>();
            let f = r.powf(d - 1.0) * (1.0 - r * r);
            if rng.random::<f64>() * f_max <= f {
                break r;
            }
        };

        // Uniform direction.
        let mut dir: Vec<f64> = (0..self.dim)
            .map(|_| MultivariateNormal::standard_normal(rng))
            .collect();
        let norm: f64 = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < f64::MIN_POSITIVE {
            // Astronomically unlikely; return the origin.
            return vec![0.0; self.dim];
        }
        for v in &mut dir {
            *v *= radius / norm;
        }
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unit_ball_volumes_match_known_values() {
        assert!((Epanechnikov::unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((Epanechnikov::unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        let v3 = 4.0 / 3.0 * std::f64::consts::PI;
        assert!((Epanechnikov::unit_ball_volume(3) - v3).abs() < 1e-12);
        let v4 = std::f64::consts::PI.powi(2) / 2.0;
        assert!((Epanechnikov::unit_ball_volume(4) - v4).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_one_1d() {
        // Midpoint rule over [-1, 1].
        let k = Epanechnikov::new(1);
        let n = 100_000;
        let dx = 2.0 / n as f64;
        let integral: f64 = (0..n)
            .map(|i| {
                let x = -1.0 + (i as f64 + 0.5) * dx;
                k.density(&[x]) * dx
            })
            .sum();
        assert!((integral - 1.0).abs() < 1e-4, "integral {integral}");
    }

    #[test]
    fn density_integrates_to_one_2d() {
        let k = Epanechnikov::new(2);
        let n = 400;
        let dx = 2.0 / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            for j in 0..n {
                let x = -1.0 + (i as f64 + 0.5) * dx;
                let y = -1.0 + (j as f64 + 0.5) * dx;
                integral += k.density(&[x, y]) * dx * dx;
            }
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn compact_support() {
        let k = Epanechnikov::new(3);
        assert_eq!(k.density(&[1.0, 0.0, 0.0]), 0.0);
        assert_eq!(k.density(&[0.6, 0.6, 0.6]), 0.0);
        assert!(k.density(&[0.5, 0.5, 0.5]) > 0.0);
    }

    #[test]
    fn density_from_sq_radius_consistent() {
        let k = Epanechnikov::new(2);
        let t = [0.3, 0.4];
        let t2 = 0.25;
        assert!((k.density(&t) - k.density_from_sq_radius(t2)).abs() < 1e-15);
    }

    #[test]
    fn samples_stay_in_unit_ball() {
        let k = Epanechnikov::new(4);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let s = k.sample(&mut rng);
            let r2: f64 = s.iter().map(|v| v * v).sum();
            assert!(r2 <= 1.0 + 1e-12, "sample outside unit ball: r² = {r2}");
        }
    }

    #[test]
    fn sample_mean_is_zero() {
        let k = Epanechnikov::new(2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sums = [0.0_f64; 2];
        let n = 20_000;
        for _ in 0..n {
            let s = k.sample(&mut rng);
            sums[0] += s[0];
            sums[1] += s[1];
        }
        assert!(sums[0].abs() / (n as f64) < 0.01);
        assert!(sums[1].abs() / (n as f64) < 0.01);
    }

    #[test]
    fn sample_1d_radial_distribution() {
        // In 1-d, variance of the Epanechnikov kernel is 1/5.
        let k = Epanechnikov::new(1);
        let mut rng = StdRng::seed_from_u64(19);
        let n = 50_000;
        let var: f64 = (0..n)
            .map(|_| {
                let s = k.sample(&mut rng)[0];
                s * s
            })
            .sum::<f64>()
            / n as f64;
        assert!((var - 0.2).abs() < 0.01, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "dim >= 1")]
    fn zero_dim_panics() {
        let _ = Epanechnikov::new(0);
    }
}
