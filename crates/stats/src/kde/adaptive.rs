use rand::{Rng, SeedableRng};
use sidefp_linalg::{Matrix, Workspace};

use crate::kde::Epanechnikov;
use crate::state::{KdeState, ScalerState};
use crate::{check_finite_matrix, descriptive, StandardScaler, StatsError};

/// Squared distance `‖(x − row)/h‖²` capped at the Epanechnikov support
/// boundary: once the partial sum reaches 1 the kernel is exactly zero no
/// matter what the remaining coordinates contribute, so the loop exits
/// early. Value-identical to the full sum for every caller that feeds the
/// result to [`Epanechnikov::density_from_sq_radius`].
#[inline]
fn sq_radius_capped(row: &[f64], x: &[f64], inv_h: f64) -> f64 {
    let mut t2 = 0.0;
    for (a, b) in row.iter().zip(x) {
        let u = (b - a) * inv_h;
        t2 += u * u;
        if t2 >= 1.0 {
            return t2;
        }
    }
    t2
}

/// Configuration for [`AdaptiveKde`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdeConfig {
    /// Global bandwidth `h` in standardized units; `None` selects the
    /// normal-reference rule scaled for the Epanechnikov kernel.
    pub bandwidth: Option<f64>,
    /// Tail-sensitivity exponent `α ∈ [0, 1]` of the local bandwidth
    /// factors `λ_i = (f(x_i)/g)^{−α}` (paper Eq. 8). `α = 0` disables
    /// adaptivity; larger `α` widens the kernels at the distribution tails.
    pub alpha: f64,
}

impl Default for KdeConfig {
    /// Normal-reference bandwidth with the paper's moderate adaptivity
    /// (`α = 0.5`, the conventional choice in Silverman 1986).
    fn default() -> Self {
        KdeConfig {
            bandwidth: None,
            alpha: 0.5,
        }
    }
}

/// Adaptive Epanechnikov kernel density estimator (paper §2.5, Eq. 5–9).
///
/// Fitting computes a pilot fixed-bandwidth estimate at every observation,
/// derives per-observation bandwidth factors `λ_i` from the ratio of pilot
/// density to its geometric mean, and exposes both the adaptive density
/// `f_α` and a sampler for generating large tail-faithful synthetic
/// populations — the paper's boundary-enhancement step (S1→S2, S4→S5).
///
/// Internally the data is standardized; densities are reported in original
/// units (divided by the Jacobian of the standardization).
#[derive(Debug, Clone)]
pub struct AdaptiveKde {
    scaler: StandardScaler,
    /// Observations in z-space.
    z: Matrix,
    kernel: Epanechnikov,
    bandwidth: f64,
    lambdas: Vec<f64>,
    /// Precomputed `(h·λ_i)^d`, the per-observation density denominators
    /// (saves one `powf` per kernel term in the scoring hot loop).
    hl_pow_d: Vec<f64>,
    /// Product of the per-column standard deviations (density Jacobian).
    jacobian: f64,
}

impl AdaptiveKde {
    /// Fits the estimator to the rows of `data`.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] for fewer than two rows.
    /// - [`StatsError::InvalidParameter`] for `α ∉ [0, 1]`, non-positive
    ///   bandwidth or non-finite observations.
    /// - [`StatsError::DegenerateData`] when every pilot density vanishes
    ///   (all local bandwidths would be undefined).
    pub fn fit(data: &Matrix, config: &KdeConfig) -> Result<Self, StatsError> {
        Self::fit_observed(data, config, &sidefp_obs::RunContext::new())
    }

    /// [`AdaptiveKde::fit`] reporting any floored pilot densities into
    /// `obs` (a counter bump plus a `rescue` trace event) instead of the
    /// ambient diagnostics context.
    ///
    /// # Errors
    ///
    /// Same as [`AdaptiveKde::fit`].
    pub fn fit_observed(
        data: &Matrix,
        config: &KdeConfig,
        obs: &sidefp_obs::RunContext,
    ) -> Result<Self, StatsError> {
        if data.nrows() < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: data.nrows(),
            });
        }
        if !(0.0..=1.0).contains(&config.alpha) {
            return Err(StatsError::InvalidParameter {
                name: "alpha",
                reason: format!("must be in [0, 1], got {}", config.alpha),
            });
        }
        check_finite_matrix("data", data)?;
        let scaler = StandardScaler::fit(data)?;
        let z = scaler.transform(data)?;
        let d = data.ncols();
        let m = data.nrows();
        let kernel = Epanechnikov::new(d);

        let bandwidth = match config.bandwidth {
            Some(h) if h > 0.0 && h.is_finite() => h,
            Some(h) => {
                return Err(StatsError::InvalidParameter {
                    name: "bandwidth",
                    reason: format!("must be positive and finite, got {h}"),
                })
            }
            // Normal-reference rule h = (4/((d+2)·M))^{1/(d+4)} on
            // standardized data, times the canonical Gaussian→Epanechnikov
            // bandwidth ratio (≈ 2.214 in 1-d; we use it for all d as the
            // usual practical compromise).
            None => {
                let gaussian = (4.0 / ((d as f64 + 2.0) * m as f64)).powf(1.0 / (d as f64 + 4.0));
                gaussian * 2.214
            }
        };

        // Pilot density (fixed bandwidth, Eq. 5) evaluated at every
        // observation, in z-space. The m × m evaluation is the fitting
        // hot spot; observations are scored in parallel.
        let pilot: Vec<f64> = sidefp_parallel::map_indexed(m, |i| {
            Self::density_fixed(&z, &kernel, bandwidth, z.row(i))
        });

        // Compact support can zero the pilot at isolated points; floor it
        // so the geometric mean and the λ exponents stay defined.
        let max_pilot = pilot.iter().cloned().fold(0.0_f64, f64::max);
        if max_pilot == 0.0 {
            return Err(StatsError::DegenerateData(
                "pilot density vanished everywhere; bandwidth too small".into(),
            ));
        }
        let floor = max_pilot * 1e-9;
        let degenerate = pilot.iter().filter(|p| **p < floor).count();
        if degenerate > 0 {
            // Previously a silent repair; surface it through RunHealth so a
            // too-small bandwidth is visible in the experiment report.
            obs.record_kde_pilot_floors(degenerate);
            obs.trace_rescue("kde", "pilot_floor", degenerate);
        }
        let floored: Vec<f64> = pilot.iter().map(|p| p.max(floor)).collect();

        // Geometric mean g (Eq. 9) and local factors λ_i (Eq. 8).
        let g = descriptive::geometric_mean(&floored)?;
        let lambdas: Vec<f64> = floored
            .iter()
            .map(|p| (p / g).powf(-config.alpha))
            .collect();

        let jacobian = scaler.stds().iter().product();
        let hl_pow_d = lambdas
            .iter()
            .map(|l| (bandwidth * l).powf(d as f64))
            .collect();

        Ok(AdaptiveKde {
            scaler,
            z,
            kernel,
            bandwidth,
            lambdas,
            hl_pow_d,
            jacobian,
        })
    }

    /// Fixed-bandwidth density in z-space (Eq. 5), summed with the
    /// deterministic blocked reduction.
    fn density_fixed(z: &Matrix, kernel: &Epanechnikov, h: f64, x: &[f64]) -> f64 {
        let m = z.nrows() as f64;
        let d = z.ncols() as f64;
        let inv_h = 1.0 / h;
        let sum = sidefp_parallel::reduce_sum(z.nrows(), |i| {
            kernel.density_from_sq_radius(sq_radius_capped(z.row(i), x, inv_h))
        });
        sum / (m * h.powf(d))
    }

    /// One adaptive kernel term `K_e((x − z_i)/(h·λ_i)) / (h·λ_i)^d`, the
    /// shared summand of every adaptive scoring path (including the binned
    /// evaluator, which must sum the very same terms).
    #[inline]
    pub(super) fn adaptive_term(&self, i: usize, zx: &[f64]) -> f64 {
        let hl = self.bandwidth * self.lambdas[i];
        let t2 = sq_radius_capped(self.z.row(i), zx, 1.0 / hl);
        self.kernel.density_from_sq_radius(t2) / self.hl_pow_d[i]
    }

    /// Observation `i` in z-space (for the binned evaluator's spatial index).
    #[inline]
    pub(super) fn z_row(&self, i: usize) -> &[f64] {
        self.z.row(i)
    }

    /// Kernel support radius `h·λ_i` of observation `i` in z-space.
    #[inline]
    pub(super) fn kernel_radius(&self, i: usize) -> f64 {
        self.bandwidth * self.lambdas[i]
    }

    /// Standardizes one query point into z-space.
    pub(super) fn transform_query(&self, x: &[f64]) -> Result<Vec<f64>, StatsError> {
        self.scaler.transform_sample(x)
    }

    /// Density Jacobian of the standardization.
    #[inline]
    pub(super) fn jacobian(&self) -> f64 {
        self.jacobian
    }

    /// Dimension of the fitted data.
    pub fn dim(&self) -> usize {
        self.z.ncols()
    }

    /// Number of observations the estimator was fitted on.
    pub fn len(&self) -> usize {
        self.z.nrows()
    }

    /// `true` if fitted on no observations (never — fit requires ≥ 2).
    pub fn is_empty(&self) -> bool {
        self.z.nrows() == 0
    }

    /// Global bandwidth `h` (standardized units).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Replaces the global bandwidth `h` without re-fitting the pilot
    /// density.
    ///
    /// The scaler, z-space observations, local factors `λ_i` and the
    /// density Jacobian are all kept; only `h` and the precomputed
    /// `(h·λ_i)^d` denominators change. This is the cheap bandwidth-refresh
    /// path for drifted populations whose *shape* (and hence pilot-density
    /// ratios) is still trusted while the spread calls for a different
    /// smoothing scale — it skips the O(m²) pilot evaluation entirely.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for a non-positive or
    /// non-finite bandwidth.
    pub fn refresh_bandwidth(&mut self, h: f64) -> Result<(), StatsError> {
        if !(h > 0.0 && h.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "bandwidth",
                reason: format!("must be positive and finite, got {h}"),
            });
        }
        let d = self.dim() as f64;
        self.bandwidth = h;
        self.hl_pow_d = self.lambdas.iter().map(|l| (h * l).powf(d)).collect();
        Ok(())
    }

    /// Local bandwidth factors `λ_i`, one per observation.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Adaptive density `f_α(x)` (Eq. 7) at a point in **original** units.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on length mismatch.
    pub fn density(&self, x: &[f64]) -> Result<f64, StatsError> {
        let zx = self.scaler.transform_sample(x)?;
        let m = self.len() as f64;
        let sum = sidefp_parallel::reduce_sum(self.len(), |i| self.adaptive_term(i, &zx));
        Ok(sum / m / self.jacobian)
    }

    /// Adaptive density at every row of `x`, scored in parallel (one
    /// worker block per chunk of query rows).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x`'s column count
    /// differs from the fitted dimension.
    pub fn density_rows(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        if x.ncols() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: x.ncols(),
            });
        }
        let rows = sidefp_parallel::map_indexed(x.nrows(), |i| {
            self.density(x.row(i))
                .expect("row width checked against fitted dimension")
        });
        Ok(rows)
    }

    /// Allocation-free form of [`AdaptiveKde::density_rows`]: scores every
    /// row of `x` into `out`, borrowing scratch from `ws`. After the
    /// workspace pool has warmed up (one call), the steady state performs
    /// zero heap allocations. Values are bit-identical to
    /// [`AdaptiveKde::density_rows`] under the strict determinism policy
    /// (the default — see [`sidefp_parallel::set_deterministic`]).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x`'s column count
    /// differs from the fitted dimension or `out.len() != x.nrows()`.
    pub fn density_rows_into(
        &self,
        x: &Matrix,
        ws: &mut Workspace,
        out: &mut [f64],
    ) -> Result<(), StatsError> {
        if x.ncols() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: x.ncols(),
            });
        }
        if out.len() != x.nrows() {
            return Err(StatsError::DimensionMismatch {
                expected: x.nrows(),
                got: out.len(),
            });
        }
        let m = self.len() as f64;
        let mut zx = ws.take(self.dim());
        for (i, o) in out.iter_mut().enumerate() {
            self.scaler.transform_sample_into(x.row(i), &mut zx)?;
            let sum = sidefp_parallel::reduce_sum_seq(self.len(), |j| self.adaptive_term(j, &zx));
            *o = sum / m / self.jacobian;
        }
        ws.give(zx);
        Ok(())
    }

    /// Draws one synthetic sample in original units: picks an observation
    /// uniformly and perturbs it by a kernel-distributed offset scaled by
    /// `h·λ_i`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let i = rng.random_range(0..self.len());
        let offset = self.kernel.sample(rng);
        let hl = self.bandwidth * self.lambdas[i];
        let zx: Vec<f64> = self
            .z
            .row(i)
            .iter()
            .zip(&offset)
            .map(|(c, o)| c + hl * o)
            .collect();
        self.scaler
            .inverse_transform_sample(&zx)
            .expect("sample dimension matches fitted dimension")
    }

    /// Draws `n` synthetic samples as rows of a matrix.
    pub fn sample_matrix<R: Rng>(&self, rng: &mut R, n: usize) -> Matrix {
        let mut out = Matrix::zeros(n, self.dim());
        for i in 0..n {
            let s = self.sample(rng);
            out.row_mut(i).copy_from_slice(&s);
        }
        out
    }

    /// Draws `n` synthetic samples in parallel, each row from its own RNG
    /// stream forked from `seed` — the result is a pure function of the
    /// seed, identical at any thread count.
    pub fn sample_matrix_streamed(&self, seed: u64, n: usize) -> Matrix {
        let rows = sidefp_parallel::map_indexed(n, |i| {
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(sidefp_parallel::fork_seed(seed, i as u64));
            self.sample(&mut rng)
        });
        let mut out = Matrix::zeros(n, self.dim());
        for (i, row) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(row);
        }
        out
    }

    /// Exports the fitted estimator as a plain-data [`KdeState`] snapshot.
    ///
    /// Only the independent parameters are stored; the precomputed
    /// `(h·λ_i)^d` table and the standardization Jacobian are recomputed
    /// by [`AdaptiveKde::from_state`] with the identical arithmetic the
    /// fit uses, so densities and samples round-trip bit-exactly.
    pub fn export_state(&self) -> KdeState {
        KdeState {
            scaler: ScalerState {
                means: self.scaler.means().to_vec(),
                stds: self.scaler.stds().to_vec(),
            },
            z: self.z.clone(),
            bandwidth: self.bandwidth,
            lambdas: self.lambdas.clone(),
        }
    }

    /// Reconstructs a fitted estimator from an exported [`KdeState`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when the state is
    /// internally inconsistent: scaler/observation dimensions disagree,
    /// the bandwidth or a λ factor is not strictly positive and finite,
    /// or an observation is non-finite.
    pub fn from_state(state: KdeState) -> Result<Self, StatsError> {
        let scaler = StandardScaler::from_parts(state.scaler.means, state.scaler.stds)?;
        if state.z.nrows() < 2 || state.z.ncols() != scaler.dim() {
            return Err(StatsError::InvalidParameter {
                name: "kde.z",
                reason: format!(
                    "expected >= 2 rows of {} columns, got {}x{}",
                    scaler.dim(),
                    state.z.nrows(),
                    state.z.ncols()
                ),
            });
        }
        check_finite_matrix("kde.z", &state.z)?;
        if !(state.bandwidth > 0.0 && state.bandwidth.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "kde.bandwidth",
                reason: format!("must be positive and finite, got {}", state.bandwidth),
            });
        }
        if state.lambdas.len() != state.z.nrows() {
            return Err(StatsError::InvalidParameter {
                name: "kde.lambdas",
                reason: format!(
                    "{} lambdas vs {} observations",
                    state.lambdas.len(),
                    state.z.nrows()
                ),
            });
        }
        if state.lambdas.iter().any(|l| !(l.is_finite() && *l > 0.0)) {
            return Err(StatsError::InvalidParameter {
                name: "kde.lambdas",
                reason: "every lambda must be strictly positive and finite".into(),
            });
        }
        let d = state.z.ncols();
        // Recomputed exactly as in `fit_observed` / `refresh_bandwidth`,
        // so the reconstructed estimator is bit-identical to the original.
        let jacobian = scaler.stds().iter().product();
        let hl_pow_d = state
            .lambdas
            .iter()
            .map(|l| (state.bandwidth * l).powf(d as f64))
            .collect();
        Ok(AdaptiveKde {
            scaler,
            kernel: Epanechnikov::new(d),
            z: state.z,
            bandwidth: state.bandwidth,
            lambdas: state.lambdas,
            hl_pow_d,
            jacobian,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_blob(n: usize, seed: u64) -> Matrix {
        let mvn = crate::MultivariateNormal::independent(vec![1.0, -2.0], &[0.5, 1.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_matrix(&mut rng, n)
    }

    #[test]
    fn default_bandwidth_is_positive() {
        let kde = AdaptiveKde::fit(&gaussian_blob(50, 1), &KdeConfig::default()).unwrap();
        assert!(kde.bandwidth() > 0.0);
        assert_eq!(kde.dim(), 2);
        assert_eq!(kde.len(), 50);
        assert!(!kde.is_empty());
    }

    #[test]
    fn density_higher_at_center_than_tail() {
        let kde = AdaptiveKde::fit(&gaussian_blob(200, 2), &KdeConfig::default()).unwrap();
        let center = kde.density(&[1.0, -2.0]).unwrap();
        let tail = kde.density(&[4.0, 4.0]).unwrap();
        assert!(center > tail, "center {center} vs tail {tail}");
    }

    #[test]
    fn alpha_zero_gives_unit_lambdas() {
        let cfg = KdeConfig {
            alpha: 0.0,
            ..Default::default()
        };
        let kde = AdaptiveKde::fit(&gaussian_blob(80, 3), &cfg).unwrap();
        for l in kde.lambdas() {
            assert!((l - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_lambdas_widen_at_tails() {
        let data = gaussian_blob(300, 4);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        // The observation with the smallest pilot density must have the
        // largest lambda. Proxy: lambda range is non-trivial.
        let lmin = kde.lambdas().iter().cloned().fold(f64::INFINITY, f64::min);
        let lmax = kde
            .lambdas()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            lmax > lmin * 1.05,
            "lambdas nearly constant: {lmin}..{lmax}"
        );
        // Geometric-mean normalization keeps lambdas around 1.
        let glog: f64 =
            kde.lambdas().iter().map(|l| l.ln()).sum::<f64>() / kde.lambdas().len() as f64;
        assert!(glog.abs() < 0.5, "log-mean lambda {glog}");
    }

    #[test]
    fn samples_follow_source_distribution() {
        let data = gaussian_blob(400, 5);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let synth = kde.sample_matrix(&mut rng, 8000);
        let sm = synth.column_means();
        let dm = data.column_means();
        assert!((sm[0] - dm[0]).abs() < 0.1, "mean0 {} vs {}", sm[0], dm[0]);
        assert!((sm[1] - dm[1]).abs() < 0.2, "mean1 {} vs {}", sm[1], dm[1]);
        // KDE inflates variance by roughly h²·Var(kernel); allow slack.
        let sv = synth.covariance().unwrap();
        let dv = data.covariance().unwrap();
        assert!(sv[(0, 0)] > dv[(0, 0)] * 0.9 && sv[(0, 0)] < dv[(0, 0)] * 1.6);
    }

    #[test]
    fn synthetic_tails_extend_beyond_data() {
        // The entire point of the enhancement step: synthetic samples reach
        // beyond the observed min/max.
        let data = gaussian_blob(100, 7);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let synth = kde.sample_matrix(&mut rng, 20_000);
        let dmax = descriptive::max(&data.col(0)).unwrap();
        let smax = descriptive::max(&synth.col(0)).unwrap();
        assert!(smax > dmax, "synthetic max {smax} <= data max {dmax}");
        let dmin = descriptive::min(&data.col(0)).unwrap();
        let smin = descriptive::min(&synth.col(0)).unwrap();
        assert!(smin < dmin, "synthetic min {smin} >= data min {dmin}");
    }

    #[test]
    fn rejects_invalid_parameters() {
        let data = gaussian_blob(20, 9);
        let bad_alpha = KdeConfig {
            alpha: 1.5,
            ..Default::default()
        };
        assert!(AdaptiveKde::fit(&data, &bad_alpha).is_err());
        let bad_h = KdeConfig {
            bandwidth: Some(-1.0),
            ..Default::default()
        };
        assert!(AdaptiveKde::fit(&data, &bad_h).is_err());
        assert!(AdaptiveKde::fit(&Matrix::zeros(1, 2), &KdeConfig::default()).is_err());
    }

    #[test]
    fn rejects_non_finite_observations() {
        let mut data = gaussian_blob(20, 14);
        data[(5, 1)] = f64::NAN;
        match AdaptiveKde::fit(&data, &KdeConfig::default()) {
            Err(StatsError::InvalidParameter { name: "data", .. }) => {}
            other => panic!("expected InvalidParameter for data, got {other:?}"),
        }
    }

    #[test]
    fn tiny_bandwidth_keeps_lambdas_defined() {
        // Minuscule bandwidth on a wide-spread set: every observation's
        // pilot is carried by its own kernel term, the λ_i stay positive and
        // finite, and any pilots below the floor are reported through the
        // diagnostics counter rather than silently repaired.
        let data =
            Matrix::from_rows(&[&[0.0], &[0.0001], &[0.0002], &[0.00015], &[1.0e6]]).unwrap();
        let cfg = KdeConfig {
            bandwidth: Some(1e-6),
            alpha: 0.5,
        };
        let obs = sidefp_obs::RunContext::new();
        let kde = AdaptiveKde::fit_observed(&data, &cfg, &obs).unwrap();
        assert!(kde.lambdas().iter().all(|l| l.is_finite() && *l > 0.0));
        // Every pilot keeps its own kernel term, so the min/max pilot ratio
        // is bounded by m and the 1e-9 floor cannot fire on this data; the
        // per-run counter stays readable and exactly zero.
        assert_eq!(obs.solver_health().kde_pilot_floors, 0);
    }

    #[test]
    fn refresh_bandwidth_matches_refit_with_same_pilots() {
        // Refreshing h on a fitted estimator must reproduce a from-scratch
        // fit at the new h *up to the pilot stage*: same scaler, same
        // z-space rows. The lambdas intentionally stay at the old pilot's
        // values, so compare against a fit whose pilots coincide (alpha = 0
        // makes lambdas identically 1, removing the pilot dependence).
        let data = gaussian_blob(80, 19);
        let cfg = KdeConfig {
            bandwidth: Some(0.4),
            alpha: 0.0,
        };
        let mut kde = AdaptiveKde::fit(&data, &cfg).unwrap();
        kde.refresh_bandwidth(0.6).unwrap();
        let refit = AdaptiveKde::fit(
            &data,
            &KdeConfig {
                bandwidth: Some(0.6),
                alpha: 0.0,
            },
        )
        .unwrap();
        assert_eq!(kde.bandwidth(), 0.6);
        for (a, b) in data.rows_iter().zip(data.rows_iter()) {
            let da = kde.density(a).unwrap();
            let db = refit.density(b).unwrap();
            assert!((da - db).abs() < 1e-12, "{da} vs {db}");
        }
    }

    #[test]
    fn refresh_bandwidth_keeps_lambdas_and_rejects_bad_h() {
        let data = gaussian_blob(60, 20);
        let mut kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let lambdas = kde.lambdas().to_vec();
        kde.refresh_bandwidth(kde.bandwidth() * 1.5).unwrap();
        assert_eq!(kde.lambdas(), lambdas.as_slice());
        assert!(kde.density(&[1.0, -2.0]).unwrap().is_finite());
        assert!(kde.refresh_bandwidth(0.0).is_err());
        assert!(kde.refresh_bandwidth(-1.0).is_err());
        assert!(kde.refresh_bandwidth(f64::NAN).is_err());
    }

    #[test]
    fn density_dimension_checked() {
        let kde = AdaptiveKde::fit(&gaussian_blob(30, 10), &KdeConfig::default()).unwrap();
        assert!(kde.density(&[1.0]).is_err());
        assert!(kde.density_rows(&Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn density_rows_into_value_identical_to_density_rows() {
        // The workspace path must reproduce the allocating path bit for
        // bit on seeded inputs (strict determinism policy, the default).
        let data = gaussian_blob(150, 21);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let queries = gaussian_blob(64, 22);
        let batch = kde.density_rows(&queries).unwrap();
        let mut ws = sidefp_linalg::Workspace::new();
        let mut out = vec![0.0; queries.nrows()];
        // Twice: the second call runs on the warmed (reused) scratch.
        for _ in 0..2 {
            kde.density_rows_into(&queries, &mut ws, &mut out).unwrap();
            assert_eq!(out, batch);
        }
        // Error paths: wrong query width, wrong output length.
        assert!(kde
            .density_rows_into(&Matrix::zeros(2, 1), &mut ws, &mut out)
            .is_err());
        assert!(kde
            .density_rows_into(&queries, &mut ws, &mut [0.0; 3])
            .is_err());
    }

    #[test]
    fn density_rows_matches_pointwise() {
        let data = gaussian_blob(60, 11);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let batch = kde.density_rows(&data).unwrap();
        for (i, row) in data.rows_iter().enumerate() {
            assert_eq!(batch[i], kde.density(row).unwrap(), "row {i}");
        }
    }

    #[test]
    fn fit_and_density_identical_at_any_thread_count() {
        let data = gaussian_blob(120, 12);
        let reference = sidefp_parallel::with_threads(1, || {
            let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
            let rows = kde.density_rows(&data).unwrap();
            (kde.lambdas().to_vec(), rows)
        });
        for threads in [2, 8] {
            let got = sidefp_parallel::with_threads(threads, || {
                let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
                let rows = kde.density_rows(&data).unwrap();
                (kde.lambdas().to_vec(), rows)
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn streamed_sampling_is_seed_deterministic_at_any_thread_count() {
        let data = gaussian_blob(80, 13);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let reference = sidefp_parallel::with_threads(1, || kde.sample_matrix_streamed(99, 500));
        for threads in [2, 8] {
            let got =
                sidefp_parallel::with_threads(threads, || kde.sample_matrix_streamed(99, 500));
            assert_eq!(got.as_slice(), reference.as_slice(), "threads={threads}");
        }
        // Streamed samples still follow the source distribution.
        let sm = reference.column_means();
        let dm = data.column_means();
        assert!((sm[0] - dm[0]).abs() < 0.15);
        assert!((sm[1] - dm[1]).abs() < 0.3);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let data = gaussian_blob(120, 23);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let state = kde.export_state();
        let rebuilt = AdaptiveKde::from_state(state.clone()).unwrap();
        assert_eq!(rebuilt.export_state(), state);
        assert_eq!(rebuilt.bandwidth(), kde.bandwidth());
        assert_eq!(rebuilt.lambdas(), kde.lambdas());
        for row in data.rows_iter() {
            assert_eq!(
                rebuilt.density(row).unwrap().to_bits(),
                kde.density(row).unwrap().to_bits()
            );
        }
        // Samples are a pure function of (state, seed), so they match too.
        assert_eq!(
            rebuilt.sample_matrix_streamed(5, 64).as_slice(),
            kde.sample_matrix_streamed(5, 64).as_slice()
        );
    }

    #[test]
    fn corrupt_kde_states_are_rejected() {
        let data = gaussian_blob(40, 24);
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let good = kde.export_state();

        let mut s = good.clone();
        s.bandwidth = 0.0;
        assert!(AdaptiveKde::from_state(s).is_err());

        let mut s = good.clone();
        s.lambdas.pop();
        assert!(AdaptiveKde::from_state(s).is_err());

        let mut s = good.clone();
        s.lambdas[0] = -1.0;
        assert!(AdaptiveKde::from_state(s).is_err());

        let mut s = good;
        s.scaler.stds[0] = 0.0;
        assert!(AdaptiveKde::from_state(s).is_err());
    }

    #[test]
    fn density_integrates_to_one_1d() {
        let data =
            Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5], &[2.0], &[0.7], &[1.3]]).unwrap();
        let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
        let n = 4000;
        let (lo, hi) = (-8.0, 10.0);
        let dx = (hi - lo) / n as f64;
        let integral: f64 = (0..n)
            .map(|i| {
                let x = lo + (i as f64 + 0.5) * dx;
                kde.density(&[x]).unwrap() * dx
            })
            .sum();
        assert!((integral - 1.0).abs() < 0.01, "integral {integral}");
    }
}
