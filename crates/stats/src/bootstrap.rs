//! Bootstrap confidence intervals for detection rates.
//!
//! Table 1's FP/FN counts are point estimates over 40/80 devices; the
//! bootstrap quantifies how much they would wobble across re-draws of the
//! same device population — context the paper's single numbers lack.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::StatsError;

/// A bootstrap percentile confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionInterval {
    /// The observed proportion.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Confidence level the bounds correspond to.
    pub confidence: f64,
}

/// Percentile-bootstrap confidence interval for the success proportion of
/// Bernoulli outcomes.
///
/// # Errors
///
/// - [`StatsError::InsufficientData`] for an empty outcome list or zero
///   resamples.
/// - [`StatsError::InvalidParameter`] for `confidence ∉ (0, 1)`.
///
/// # Example
///
/// ```
/// use sidefp_stats::bootstrap::proportion_interval;
///
/// # fn main() -> Result<(), sidefp_stats::StatsError> {
/// // 3 detections missed out of 40.
/// let outcomes: Vec<bool> = (0..40).map(|i| i < 3).collect();
/// let ci = proportion_interval(&outcomes, 0.95, 1000, 7)?;
/// assert!((ci.estimate - 0.075).abs() < 1e-12);
/// assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
/// # Ok(())
/// # }
/// ```
pub fn proportion_interval(
    outcomes: &[bool],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<ProportionInterval, StatsError> {
    if outcomes.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    if resamples == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidParameter {
            name: "confidence",
            reason: format!("must be in (0, 1), got {confidence}"),
        });
    }
    let n = outcomes.len();
    let estimate = outcomes.iter().filter(|o| **o).count() as f64 / n as f64;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats: Vec<f64> = (0..resamples)
        .map(|_| {
            let hits = (0..n).filter(|_| outcomes[rng.random_range(0..n)]).count();
            hits as f64 / n as f64
        })
        .collect();
    stats.sort_by(f64::total_cmp);

    let alpha = 1.0 - confidence;
    let lo_idx = ((alpha / 2.0) * (resamples - 1) as f64).round() as usize;
    let hi_idx = ((1.0 - alpha / 2.0) * (resamples - 1) as f64).round() as usize;
    Ok(ProportionInterval {
        estimate,
        lower: stats[lo_idx],
        upper: stats[hi_idx],
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_estimate() {
        let outcomes: Vec<bool> = (0..100).map(|i| i % 4 == 0).collect();
        let ci = proportion_interval(&outcomes, 0.95, 2000, 1).unwrap();
        assert!((ci.estimate - 0.25).abs() < 1e-12);
        assert!(ci.lower <= 0.25 && 0.25 <= ci.upper);
        assert!(ci.upper - ci.lower < 0.25, "interval too wide: {ci:?}");
        assert_eq!(ci.confidence, 0.95);
    }

    #[test]
    fn degenerate_outcomes_give_point_interval() {
        let all_false = vec![false; 50];
        let ci = proportion_interval(&all_false, 0.9, 500, 2).unwrap();
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lower, 0.0);
        assert_eq!(ci.upper, 0.0);
    }

    #[test]
    fn percentile_sort_is_nan_safe() {
        // Regression: the percentile sort used
        // partial_cmp().expect("finite proportions"). Resampled proportions
        // are finite by construction today, but the comparator must stay
        // panic-free if that ever changes: total_cmp orders NaN after every
        // finite value instead of aborting.
        let mut stats = [0.5, f64::NAN, 0.25, -0.0, 0.0];
        stats.sort_by(f64::total_cmp);
        assert_eq!(stats[0], -0.0);
        assert_eq!(stats[2], 0.25);
        assert_eq!(stats[3], 0.5);
        assert!(stats[4].is_nan());
        // And the public path still works on a large resample count.
        let outcomes: Vec<bool> = (0..64).map(|i| i % 8 == 0).collect();
        let ci = proportion_interval(&outcomes, 0.99, 3000, 9).unwrap();
        assert!(ci.lower.is_finite() && ci.upper.is_finite());
        let all_true = vec![true; 50];
        let ci = proportion_interval(&all_true, 0.9, 500, 3).unwrap();
        assert_eq!((ci.lower, ci.upper), (1.0, 1.0));
    }

    #[test]
    fn wider_confidence_gives_wider_interval() {
        let outcomes: Vec<bool> = (0..60).map(|i| i % 3 == 0).collect();
        let narrow = proportion_interval(&outcomes, 0.80, 2000, 4).unwrap();
        let wide = proportion_interval(&outcomes, 0.99, 2000, 4).unwrap();
        assert!(wide.upper - wide.lower >= narrow.upper - narrow.lower);
    }

    #[test]
    fn deterministic_given_seed() {
        let outcomes: Vec<bool> = (0..30).map(|i| i % 5 == 0).collect();
        let a = proportion_interval(&outcomes, 0.95, 300, 9).unwrap();
        let b = proportion_interval(&outcomes, 0.95, 300, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(proportion_interval(&[], 0.95, 100, 0).is_err());
        assert!(proportion_interval(&[true], 0.95, 0, 0).is_err());
        assert!(proportion_interval(&[true], 0.0, 100, 0).is_err());
        assert!(proportion_interval(&[true], 1.0, 100, 0).is_err());
    }
}
