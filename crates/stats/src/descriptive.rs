//! Descriptive statistics over `f64` slices.
//!
//! These free functions are the shared vocabulary of the higher-level
//! estimators: bandwidth selection, scaler fitting and report generation all
//! route through here.

use crate::StatsError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty slice.
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Sample variance (denominator `n − 1`).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for fewer than two values.
pub fn variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: data.len(),
        });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Sample standard deviation.
///
/// # Errors
///
/// See [`variance`].
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    Ok(variance(data)?.sqrt())
}

/// Population variance (denominator `n`).
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty slice.
pub fn population_variance(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Minimum value.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty slice.
pub fn min(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    Ok(data.iter().cloned().fold(f64::INFINITY, f64::min))
}

/// Maximum value.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] for an empty slice.
pub fn max(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    Ok(data.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
}

/// Linear-interpolated quantile, `q` in `[0, 1]`.
///
/// # Errors
///
/// - [`StatsError::InsufficientData`] for an empty slice.
/// - [`StatsError::InvalidParameter`] if `q` is outside `[0, 1]` or NaN.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            name: "q",
            reason: format!("quantile must be in [0, 1], got {q}"),
        });
    }
    let mut sorted = data.to_vec();
    // total_cmp gives NaNs a total order (they sort to the end) instead of
    // panicking; a NaN that slips past upstream sanitization degrades the
    // estimate rather than aborting the pipeline.
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// See [`quantile`].
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    quantile(data, 0.5)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// # Errors
///
/// - [`StatsError::DimensionMismatch`] if lengths differ.
/// - [`StatsError::InsufficientData`] for fewer than two pairs.
/// - [`StatsError::DegenerateData`] if either sample has zero variance.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::DimensionMismatch {
            expected: x.len(),
            got: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: x.len(),
        });
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::DegenerateData(
            "zero variance in correlation input".into(),
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Geometric mean of strictly positive data.
///
/// # Errors
///
/// - [`StatsError::InsufficientData`] for an empty slice.
/// - [`StatsError::DegenerateData`] if any value is non-positive.
pub fn geometric_mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let mut log_sum = 0.0;
    for &v in data {
        if v <= 0.0 {
            return Err(StatsError::DegenerateData(format!(
                "geometric mean requires positive data, found {v}"
            )));
        }
        log_sum += v.ln();
    }
    Ok((log_sum / data.len() as f64).exp())
}

/// Coefficient of determination R² of predictions vs. targets.
///
/// # Errors
///
/// - [`StatsError::DimensionMismatch`] if lengths differ.
/// - [`StatsError::InsufficientData`] for fewer than two pairs.
/// - [`StatsError::DegenerateData`] if the targets have zero variance.
pub fn r_squared(targets: &[f64], predictions: &[f64]) -> Result<f64, StatsError> {
    if targets.len() != predictions.len() {
        return Err(StatsError::DimensionMismatch {
            expected: targets.len(),
            got: predictions.len(),
        });
    }
    if targets.len() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: targets.len(),
        });
    }
    let m = mean(targets)?;
    let ss_tot: f64 = targets.iter().map(|t| (t - m) * (t - m)).sum();
    if ss_tot == 0.0 {
        return Err(StatsError::DegenerateData(
            "targets have zero variance".into(),
        ));
    }
    let ss_res: f64 = targets
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Root-mean-square error of predictions vs. targets.
///
/// # Errors
///
/// - [`StatsError::DimensionMismatch`] if lengths differ.
/// - [`StatsError::InsufficientData`] for empty input.
pub fn rmse(targets: &[f64], predictions: &[f64]) -> Result<f64, StatsError> {
    if targets.len() != predictions.len() {
        return Err(StatsError::DimensionMismatch {
            expected: targets.len(),
            got: predictions.len(),
        });
    }
    if targets.is_empty() {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }
    let mse: f64 = targets
        .iter()
        .zip(predictions)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / targets.len() as f64;
    Ok(mse.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&d).unwrap(), 5.0);
        assert!((variance(&d).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((population_variance(&d).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&d).unwrap() - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }

    #[test]
    fn min_max() {
        let d = [3.0, -1.0, 4.0];
        assert_eq!(min(&d).unwrap(), -1.0);
        assert_eq!(max(&d).unwrap(), 4.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&d, 1.0).unwrap(), 4.0);
        assert!((median(&d).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&d, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!(quantile(&d, 1.5).is_err());
        assert!(quantile(&d, -0.1).is_err());
    }

    #[test]
    fn correlation_of_linear_data_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson_correlation(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_errors() {
        assert!(pearson_correlation(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson_correlation(&[1.0], &[2.0]).is_err());
        assert!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn geometric_mean_known_value() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[-1.0]).is_err());
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let t = [1.0, 2.0, 3.0];
        assert!((r_squared(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&t, &mean_pred).unwrap().abs() < 1e-12);
        assert!(r_squared(&[1.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - (12.5_f64).sqrt()).abs() < 1e-12);
        assert!(rmse(&[], &[]).is_err());
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn quantile_does_not_panic_on_nan() {
        // Regression: the sort used partial_cmp().expect("finite values")
        // and panicked on NaN input. NaNs now order last, so low quantiles
        // of mostly-finite data stay finite.
        let data = [3.0, f64::NAN, 1.0, 2.0];
        let q = quantile(&data, 0.0).unwrap();
        assert_eq!(q, 1.0);
        let m = median(&data).unwrap();
        assert!(m.is_finite(), "median of 3 finite + 1 NaN: {m}");
        // All-NaN input degrades to NaN rather than panicking.
        assert!(median(&[f64::NAN, f64::NAN]).unwrap().is_nan());
    }
}
