use rand::Rng;
use sidefp_linalg::{vecops, Matrix};
use sidefp_obs::RunContext;

use crate::approx::{self, KernelApprox, KernelFeatureMap};
use crate::qp::{solve_box_band_detailed, solve_box_band_lowrank, BoxBandConfig};
use crate::{check_finite_matrix, descriptive, GramMatrix, Kernel, MultivariateNormal, StatsError};

/// Relaxation factor for accepting a best-effort QP iterate: a final step
/// within 100× the configured tolerance still yields usable weights.
const QP_RELAXED_FACTOR: f64 = 100.0;

/// Configuration for [`KernelMeanMatching`].
#[derive(Debug, Clone, PartialEq)]
pub struct KmmConfig {
    /// Kernel used for distribution matching; `None` selects an RBF via the
    /// median heuristic on the pooled train + test data.
    pub kernel: Option<Kernel>,
    /// Weight cap `B` of the box constraint `0 ≤ β_i ≤ B` (paper Eq. 3).
    pub upper: f64,
    /// Mean-constraint half width `ε`; `None` selects the conventional
    /// `(√n_tr − 1)/√n_tr` from Gretton et al.
    pub band: Option<f64>,
    /// Iteration budget for the projected-gradient QP.
    pub max_iter: usize,
    /// Kernel evaluation strategy: exact Gram matrices, or a sub-quadratic
    /// low-rank approximation. The default [`KernelApprox::Auto`] keeps
    /// populations up to [`KernelApprox::AUTO_EXACT_LIMIT`] training rows
    /// on the exact path, so existing pipelines are value-identical.
    pub approx: KernelApprox,
}

impl Default for KmmConfig {
    fn default() -> Self {
        KmmConfig {
            kernel: None,
            upper: 1000.0,
            band: None,
            max_iter: 4000,
            approx: KernelApprox::Auto,
        }
    }
}

/// Kernel mean matching: covariate-shift correction by importance weighting
/// (paper §2.4, Eq. 3–4).
///
/// Given a *training* population (Monte Carlo simulated PCM vectors) whose
/// distribution differs from a *testing* population (PCMs measured on the
/// devices under Trojan test), KMM finds weights `β` on the training samples
/// that minimize the maximum mean discrepancy between the weighted training
/// set and the test set in the kernel's feature space. The weighted training
/// set then *behaves like* the silicon population — the paper's mechanism
/// for anchoring the simulation model to the foundry's true operating point.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::{KernelMeanMatching, KmmConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Training spans [0, 4]; test concentrates near 3.
/// let train = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]])?;
/// let test = Matrix::from_rows(&[&[2.8], &[3.0], &[3.2]])?;
/// let kmm = KernelMeanMatching::fit(&train, &test, &KmmConfig::default())?;
/// let w = kmm.weights();
/// assert!(w[3] > w[0]); // mass moves toward the test region
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KernelMeanMatching {
    weights: Vec<f64>,
    train: Matrix,
    /// Kernel representation cached from fitting so diagnostics like
    /// [`KernelMeanMatching::mmd_objective`] never recompute the pairwise
    /// kernels.
    backing: KmmBacking,
}

/// Kernel state a fitted KMM keeps for post-fit diagnostics.
#[derive(Debug, Clone)]
enum KmmBacking {
    /// The full train-side Gram matrix (exact path).
    Exact(GramMatrix),
    /// The low-rank feature map (Nyström / RFF path); the train-side
    /// features `Φ` stand in for the Gram matrix as `K ≈ ΦΦᵀ`.
    LowRank(KernelFeatureMap),
}

impl KernelMeanMatching {
    /// Fits importance weights matching `train` to `test`, reporting any
    /// QP rescue into a throwaway [`RunContext`].
    ///
    /// Pipeline code should prefer [`KernelMeanMatching::fit_observed`],
    /// which reports into the run's own [`RunContext`].
    ///
    /// # Errors
    ///
    /// See [`KernelMeanMatching::fit_observed`].
    pub fn fit(train: &Matrix, test: &Matrix, config: &KmmConfig) -> Result<Self, StatsError> {
        Self::fit_observed(train, test, config, &RunContext::new())
    }

    /// Fits importance weights matching `train` to `test`, reporting any
    /// relaxed-tolerance QP acceptance or non-convergence into `obs` (a
    /// counter bump plus a `rescue` trace event).
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] if either set has fewer than two
    ///   rows.
    /// - [`StatsError::InvalidParameter`] if the matrices have no feature
    ///   columns or contain non-finite entries.
    /// - [`StatsError::DimensionMismatch`] if the column counts differ.
    /// - Parameter and solver errors from the underlying QP.
    pub fn fit_observed(
        train: &Matrix,
        test: &Matrix,
        config: &KmmConfig,
        obs: &RunContext,
    ) -> Result<Self, StatsError> {
        let ntr = train.nrows();
        let nte = test.nrows();
        if ntr < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: ntr,
            });
        }
        if nte < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: nte,
            });
        }
        if train.ncols() == 0 {
            return Err(StatsError::InvalidParameter {
                name: "train",
                reason: "matrix has no feature columns".into(),
            });
        }
        if train.ncols() != test.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: train.ncols(),
                got: test.ncols(),
            });
        }
        check_finite_matrix("train", train)?;
        check_finite_matrix("test", test)?;

        let kernel = match config.kernel {
            Some(k) => {
                k.validate()?;
                k
            }
            None => {
                let pooled = train.vstack(test)?;
                Kernel::rbf_median_heuristic(&pooled)?
            }
        };
        config.approx.validate()?;

        let ratio = ntr as f64 / nte as f64;
        let band = config
            .band
            .unwrap_or(((ntr as f64).sqrt() - 1.0) / (ntr as f64).sqrt());
        let qp_cfg = BoxBandConfig {
            upper: config.upper,
            band,
            max_iter: config.max_iter,
            tol: 1e-7,
        };

        // Route the QP: exact Gram matrices, or the low-rank factorization
        // K ≈ ΦΦᵀ with O(n·rank) mat-vecs instead of O(n²). The low-rank
        // seed is forked off the OCSVM's fit-seed stream so the two solvers
        // never share feature draws.
        let seed = sidefp_parallel::fork_seed(approx::approx_fit_seed(ntr), 1);
        let map = match config.approx.resolve(ntr, &kernel) {
            KernelApprox::Nystrom { rank } => {
                Some(KernelFeatureMap::nystrom(kernel, train, rank, seed)?)
            }
            KernelApprox::Rff { features } => {
                Some(KernelFeatureMap::rff(kernel, train, features, seed)?)
            }
            _ => None,
        };
        let (sol, backing) = match map {
            Some(map) => {
                // κ_i = ratio · ⟨φ_i, Σ_j φ(z_j)⟩ — the approximate form of
                // paper Eq. 4's test-kernel sums, O(n·rank) to assemble.
                let phi_te = map.embed_rows(test)?;
                let mut s_te = vec![0.0; map.feature_count()];
                for row in phi_te.rows_iter() {
                    vecops::axpy_mut(&mut s_te, 1.0, row);
                }
                let phi_tr = map.features();
                let s_ref = &s_te;
                let kappa: Vec<f64> = sidefp_parallel::map_indexed(ntr, |i| {
                    ratio * vecops::dot(phi_tr.row(i), s_ref)
                });
                let sol = solve_box_band_lowrank(phi_tr, &kappa, &qp_cfg)?;
                (sol, KmmBacking::LowRank(map))
            }
            None => {
                // K_ij = k(x_i^tr, x_j^tr) — computed once by the shared
                // parallel engine and kept for post-fit diagnostics.
                let train_gram = GramMatrix::symmetric(kernel, train);
                // κ_i = (n_tr / n_te) Σ_j k(x_i^tr, x_j^te)  (paper Eq. 4)
                let cross = GramMatrix::cross(kernel, train, test)?;
                let kappa: Vec<f64> =
                    sidefp_parallel::map_indexed(ntr, |i| ratio * cross.row(i).iter().sum::<f64>());
                let sol = solve_box_band_detailed(train_gram.matrix(), &kappa, &qp_cfg)?;
                (sol, KmmBacking::Exact(train_gram))
            }
        };
        if !sol.converged {
            // Best-effort weights: record how rough the final step still was
            // so RunHealth surfaces the fallback instead of hiding it.
            if sol.final_delta <= QP_RELAXED_FACTOR * qp_cfg.tol {
                obs.record_qp_relaxed();
                obs.trace_rescue("qp", "relaxed", 1);
            } else {
                obs.record_qp_nonconverged();
                obs.trace_rescue("qp", "nonconverged", 1);
            }
        }
        let weights = sol.beta;

        Ok(KernelMeanMatching {
            weights,
            train: train.clone(),
            backing,
        })
    }

    /// Re-solves the importance weights against an *updated* test
    /// population, reusing the kernel representation cached at fit time.
    ///
    /// This is the cheap re-weighting path for drifted operating points:
    /// the train-side Gram matrix (or low-rank feature map) — the dominant
    /// fit cost — is kept verbatim, and only the train×test cross block and
    /// the QP re-solve run fresh. The kernel stays whatever the original
    /// fit selected (including a median-heuristic choice), so the weights
    /// are exactly what [`KernelMeanMatching::fit_observed`] would produce
    /// for the new test set with that kernel pinned.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] for fewer than two test rows.
    /// - [`StatsError::DimensionMismatch`] if the column count differs from
    ///   the fitted training set.
    /// - [`StatsError::InvalidParameter`] for non-finite test entries.
    /// - Parameter and solver errors from the underlying QP.
    pub fn reweight_observed(
        &mut self,
        test: &Matrix,
        config: &KmmConfig,
        obs: &RunContext,
    ) -> Result<(), StatsError> {
        let ntr = self.train.nrows();
        let nte = test.nrows();
        if nte < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: nte,
            });
        }
        if test.ncols() != self.train.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: self.train.ncols(),
                got: test.ncols(),
            });
        }
        check_finite_matrix("test", test)?;

        let ratio = ntr as f64 / nte as f64;
        let band = config
            .band
            .unwrap_or(((ntr as f64).sqrt() - 1.0) / (ntr as f64).sqrt());
        let qp_cfg = BoxBandConfig {
            upper: config.upper,
            band,
            max_iter: config.max_iter,
            tol: 1e-7,
        };
        let sol = match &self.backing {
            KmmBacking::Exact(gram) => {
                let cross = GramMatrix::cross(gram.kernel(), &self.train, test)?;
                let kappa: Vec<f64> =
                    sidefp_parallel::map_indexed(ntr, |i| ratio * cross.row(i).iter().sum::<f64>());
                solve_box_band_detailed(gram.matrix(), &kappa, &qp_cfg)?
            }
            KmmBacking::LowRank(map) => {
                let phi_te = map.embed_rows(test)?;
                let mut s_te = vec![0.0; map.feature_count()];
                for row in phi_te.rows_iter() {
                    vecops::axpy_mut(&mut s_te, 1.0, row);
                }
                let phi_tr = map.features();
                let s_ref = &s_te;
                let kappa: Vec<f64> = sidefp_parallel::map_indexed(ntr, |i| {
                    ratio * vecops::dot(phi_tr.row(i), s_ref)
                });
                solve_box_band_lowrank(phi_tr, &kappa, &qp_cfg)?
            }
        };
        if !sol.converged {
            if sol.final_delta <= QP_RELAXED_FACTOR * qp_cfg.tol {
                obs.record_qp_relaxed();
                obs.trace_rescue("qp", "relaxed", 1);
            } else {
                obs.record_qp_nonconverged();
                obs.trace_rescue("qp", "nonconverged", 1);
            }
        }
        self.weights = sol.beta;
        Ok(())
    }

    /// The fitted importance weights, one per training row.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The kernel used for matching (after any median-heuristic selection).
    pub fn kernel(&self) -> Kernel {
        match &self.backing {
            KmmBacking::Exact(gram) => gram.kernel(),
            KmmBacking::LowRank(map) => map.kernel(),
        }
    }

    /// Weighted maximum-mean-discrepancy objective value (lower is better);
    /// useful for diagnostics and ablations.
    ///
    /// The train-side quadratic term reuses the kernel representation
    /// cached at fit time (Gram matrix or low-rank features); only the
    /// test-side and cross blocks are evaluated fresh. On the low-rank
    /// path every term is computed in the approximate feature space, so
    /// the value is the objective the fitted QP actually minimized.
    pub fn mmd_objective(&self, test: &Matrix) -> Result<f64, StatsError> {
        if test.ncols() != self.train.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: self.train.ncols(),
                got: test.ncols(),
            });
        }
        let ntr = self.train.nrows() as f64;
        let nte = test.nrows() as f64;
        // ‖(1/ntr)Σβ_iφ(x_i) − (1/nte)Σφ(z_j)‖² expanded in kernel terms.
        let (term_tr, term_cross, term_te) = match &self.backing {
            KmmBacking::Exact(gram) => {
                let kernel = gram.kernel();
                let term_tr = gram.weighted_quadratic(&self.weights);
                let cross = GramMatrix::cross(kernel, &self.train, test)?;
                let term_cross = sidefp_parallel::reduce_sum(self.train.nrows(), |i| {
                    self.weights[i] * cross.row(i).iter().sum::<f64>()
                });
                let term_te = GramMatrix::symmetric(kernel, test).total_sum();
                (term_tr, term_cross, term_te)
            }
            KmmBacking::LowRank(map) => {
                // βᵀK̃β = ‖Φᵀβ‖², Σβ_i k̃(x_i, Z) = ⟨Φᵀβ, s⟩, ΣΣ k̃ = ‖s‖²
                // with s the column sums of the embedded test rows.
                let w_tr = map.features().vecmat(&self.weights)?;
                let phi_te = map.embed_rows(test)?;
                let mut s_te = vec![0.0; map.feature_count()];
                for row in phi_te.rows_iter() {
                    vecops::axpy_mut(&mut s_te, 1.0, row);
                }
                (
                    vecops::sq_norm(&w_tr),
                    vecops::dot(&w_tr, &s_te),
                    vecops::sq_norm(&s_te),
                )
            }
        };
        Ok(term_tr / (ntr * ntr) - 2.0 * term_cross / (ntr * nte) + term_te / (nte * nte))
    }

    /// Importance-weighted mean of the training rows — KMM's estimate of
    /// the testing distribution's location using training-support mass.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DegenerateData`] if all weights are zero.
    pub fn weighted_train_mean(&self) -> Result<Vec<f64>, StatsError> {
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::DegenerateData(
                "all importance weights are zero".into(),
            ));
        }
        let mut mean = vec![0.0; self.train.ncols()];
        for (row, w) in self.train.rows_iter().zip(&self.weights) {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += w * v;
            }
        }
        for m in &mut mean {
            *m /= total;
        }
        Ok(mean)
    }

    /// Iterated **kernel mean shift** (the paper's §2.2 "mean shifting
    /// method"): translates the full training population toward the testing
    /// operating point.
    ///
    /// Each round fits KMM between the current (translated) training set
    /// and the test set, then translates all training rows by the gap
    /// between the importance-weighted and the raw training mean. Because a
    /// single KMM round can only move mass within the training support,
    /// iteration lets the population bridge operating-point drifts larger
    /// than the training spread — exactly the regime where a stale
    /// simulation model meets a drifted foundry. The output keeps the
    /// *training* population's spread (the paper: "m″_p will have a
    /// wider-spread distribution as compared to m′_p") with the *testing*
    /// population's location.
    ///
    /// # Errors
    ///
    /// Propagates KMM fitting errors.
    pub fn mean_shift_population(
        train: &Matrix,
        test: &Matrix,
        config: &KmmConfig,
        max_iterations: usize,
    ) -> Result<Matrix, StatsError> {
        Self::mean_shift_population_observed(train, test, config, max_iterations, {
            &RunContext::new()
        })
    }

    /// [`KernelMeanMatching::mean_shift_population`] reporting each
    /// iteration's QP rescues into `obs` instead of the ambient context.
    ///
    /// # Errors
    ///
    /// Propagates KMM fitting errors.
    pub fn mean_shift_population_observed(
        train: &Matrix,
        test: &Matrix,
        config: &KmmConfig,
        max_iterations: usize,
        obs: &RunContext,
    ) -> Result<Matrix, StatsError> {
        let mut shifted = train.clone();
        // Convergence scale: translation below 2% of the per-column test
        // spread stops the iteration.
        let test_scale: Vec<f64> = (0..test.ncols())
            .map(|j| descriptive::std_dev(&test.col(j)).unwrap_or(0.0).max(1e-12))
            .collect();
        for _ in 0..max_iterations {
            let kmm = KernelMeanMatching::fit_observed(&shifted, test, config, obs)?;
            let weighted = kmm.weighted_train_mean()?;
            let raw = shifted.column_means();
            let delta: Vec<f64> = weighted.iter().zip(&raw).map(|(w, r)| w - r).collect();
            let significant = delta
                .iter()
                .zip(&test_scale)
                .any(|(d, s)| d.abs() > 0.02 * s);
            if !significant {
                break;
            }
            for i in 0..shifted.nrows() {
                let row = shifted.row_mut(i);
                for (v, d) in row.iter_mut().zip(&delta) {
                    *v += d;
                }
            }
        }
        Ok(shifted)
    }

    /// Generates a *shifted population*: `n` samples drawn from the
    /// training rows with probability proportional to the importance
    /// weights, each perturbed by Gaussian jitter of `jitter` × the
    /// per-column training standard deviation.
    ///
    /// This is the weighted-bootstrap alternative to
    /// [`KernelMeanMatching::mean_shift_population`]; it follows the test
    /// distribution's *shape* more closely but collapses when the
    /// distributions barely overlap.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for negative `jitter` and
    /// [`StatsError::DegenerateData`] if all weights are zero.
    pub fn shifted_population<R: Rng>(
        &self,
        rng: &mut R,
        n: usize,
        jitter: f64,
    ) -> Result<Matrix, StatsError> {
        if jitter < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "jitter",
                reason: format!("must be non-negative, got {jitter}"),
            });
        }
        let total: f64 = self.weights.iter().sum();
        if total <= 0.0 {
            return Err(StatsError::DegenerateData(
                "all importance weights are zero".into(),
            ));
        }
        // Cumulative distribution for weighted sampling.
        let mut cdf = Vec::with_capacity(self.weights.len());
        let mut acc = 0.0;
        for w in &self.weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Per-column std for jitter scale.
        let stds: Vec<f64> = (0..self.train.ncols())
            .map(|j| descriptive::std_dev(&self.train.col(j)).unwrap_or(0.0))
            .collect();

        let d = self.train.ncols();
        let mut out = Matrix::zeros(n, d);
        for i in 0..n {
            let u: f64 = rng.random();
            let idx = cdf.partition_point(|c| *c < u).min(cdf.len() - 1);
            let base = self.train.row(idx);
            for j in 0..d {
                let noise = if jitter > 0.0 {
                    MultivariateNormal::standard_normal(rng) * jitter * stds[j]
                } else {
                    0.0
                };
                out[(i, j)] = base[j] + noise;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Training ~ N(0,1), test ~ N(1.5, 0.8): classic covariate shift.
    fn shifted_sets(seed: u64) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tr = MultivariateNormal::independent(vec![0.0], &[1.0])
            .unwrap()
            .sample_matrix(&mut rng, 80);
        let te = MultivariateNormal::independent(vec![1.5], &[0.8])
            .unwrap()
            .sample_matrix(&mut rng, 60);
        (tr, te)
    }

    #[test]
    fn weights_shift_mass_toward_test_region() {
        let (tr, te) = shifted_sets(1);
        let kmm = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        // Weighted training mean should approach the test mean.
        let total: f64 = kmm.weights().iter().sum();
        let wmean: f64 = tr
            .col(0)
            .iter()
            .zip(kmm.weights())
            .map(|(x, w)| x * w)
            .sum::<f64>()
            / total;
        let raw_mean = descriptive::mean(&tr.col(0)).unwrap();
        let te_mean = descriptive::mean(&te.col(0)).unwrap();
        assert!(
            (wmean - te_mean).abs() < (raw_mean - te_mean).abs(),
            "weighted mean {wmean} not closer to test mean {te_mean} than raw {raw_mean}"
        );
    }

    #[test]
    fn weighted_mmd_not_worse_than_uniform() {
        let (tr, te) = shifted_sets(2);
        let kmm = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        let weighted = kmm.mmd_objective(&te).unwrap();
        let uniform = KernelMeanMatching {
            weights: vec![1.0; tr.nrows()],
            backing: KmmBacking::Exact(GramMatrix::symmetric(kmm.kernel(), &tr)),
            train: tr.clone(),
        }
        .mmd_objective(&te)
        .unwrap();
        assert!(
            weighted <= uniform + 1e-9,
            "weighted MMD {weighted} > uniform {uniform}"
        );
    }

    #[test]
    fn identical_distributions_give_near_uniform_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mvn = MultivariateNormal::independent(vec![0.0], &[1.0]).unwrap();
        let tr = mvn.sample_matrix(&mut rng, 60);
        let te = mvn.sample_matrix(&mut rng, 60);
        let kmm = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        let mean_w = descriptive::mean(kmm.weights()).unwrap();
        // Mean near 1 and no extreme concentration.
        assert!((mean_w - 1.0).abs() < 0.5, "mean weight {mean_w}");
        let max_w = kmm.weights().iter().cloned().fold(0.0_f64, f64::max);
        assert!(max_w < 10.0, "weight spike {max_w} on identical data");
    }

    #[test]
    fn shifted_population_moves_location_keeps_spread() {
        let (tr, te) = shifted_sets(4);
        let kmm = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pop = kmm.shifted_population(&mut rng, 2000, 0.05).unwrap();
        let pop_mean = descriptive::mean(&pop.col(0)).unwrap();
        let te_mean = descriptive::mean(&te.col(0)).unwrap();
        let tr_mean = descriptive::mean(&tr.col(0)).unwrap();
        assert!(
            (pop_mean - te_mean).abs() < (tr_mean - te_mean).abs(),
            "population mean {pop_mean} did not move toward test mean {te_mean}"
        );
        // Spread stays comparable to the training spread (within 2x).
        let pop_std = descriptive::std_dev(&pop.col(0)).unwrap();
        let tr_std = descriptive::std_dev(&tr.col(0)).unwrap();
        assert!(pop_std < 2.0 * tr_std && pop_std > 0.2 * tr_std);
    }

    #[test]
    fn rejects_bad_input() {
        let a = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let one = Matrix::from_rows(&[&[0.0]]).unwrap();
        let wide = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(KernelMeanMatching::fit(&one, &a, &KmmConfig::default()).is_err());
        assert!(KernelMeanMatching::fit(&a, &one, &KmmConfig::default()).is_err());
        assert!(KernelMeanMatching::fit(&a, &wide, &KmmConfig::default()).is_err());
        let bad_kernel = KmmConfig {
            kernel: Some(Kernel::Rbf { gamma: -1.0 }),
            ..Default::default()
        };
        assert!(KernelMeanMatching::fit(&a, &a, &bad_kernel).is_err());
    }

    #[test]
    fn rejects_zero_column_matrices_with_typed_error() {
        let empty = Matrix::zeros(3, 0);
        match KernelMeanMatching::fit(&empty, &empty, &KmmConfig::default()) {
            Err(StatsError::InvalidParameter { name: "train", .. }) => {}
            other => panic!("expected InvalidParameter for train, got {other:?}"),
        }
        // Column-count mismatch stays a DimensionMismatch.
        let a = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        match KernelMeanMatching::fit(&a, &empty, &KmmConfig::default()) {
            Err(StatsError::DimensionMismatch {
                expected: 1,
                got: 0,
            }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_finite_inputs_with_typed_error() {
        let (tr, te) = shifted_sets(9);
        let mut bad_tr = tr.clone();
        bad_tr[(3, 0)] = f64::NAN;
        match KernelMeanMatching::fit(&bad_tr, &te, &KmmConfig::default()) {
            Err(StatsError::InvalidParameter { name: "train", .. }) => {}
            other => panic!("expected InvalidParameter for train, got {other:?}"),
        }
        let mut bad_te = te.clone();
        bad_te[(0, 0)] = f64::INFINITY;
        match KernelMeanMatching::fit(&tr, &bad_te, &KmmConfig::default()) {
            Err(StatsError::InvalidParameter { name: "test", .. }) => {}
            other => panic!("expected InvalidParameter for test, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_qp_budget_records_fallback_not_error() {
        let (tr, te) = shifted_sets(10);
        let obs = RunContext::new();
        let cfg = KmmConfig {
            max_iter: 1,
            ..Default::default()
        };
        let kmm = KernelMeanMatching::fit_observed(&tr, &te, &cfg, &obs).unwrap();
        assert_eq!(kmm.weights().len(), tr.nrows());
        let health = obs.solver_health();
        assert!(
            health.qp_relaxed + health.qp_nonconverged > 0,
            "one-iteration QP budget must be recorded as a fallback"
        );
        // The fallback also leaves a structured trace event.
        assert!(obs
            .trace_events()
            .iter()
            .any(|r| matches!(r.event, sidefp_obs::TraceEvent::Rescue { solver: "qp", .. })));
    }

    #[test]
    fn reweight_matches_fresh_fit_with_pinned_kernel() {
        let (tr, te1) = shifted_sets(11);
        let mut rng = StdRng::seed_from_u64(42);
        let te2 = MultivariateNormal::independent(vec![2.0], &[0.7])
            .unwrap()
            .sample_matrix(&mut rng, 60);
        let mut kmm = KernelMeanMatching::fit(&tr, &te1, &KmmConfig::default()).unwrap();
        let kernel = kmm.kernel();
        kmm.reweight_observed(&te2, &KmmConfig::default(), &RunContext::new())
            .unwrap();
        // A from-scratch fit with the same kernel pinned runs the identical
        // Gram build + QP trajectory, so the weights must agree bitwise.
        let fresh = KernelMeanMatching::fit(
            &tr,
            &te2,
            &KmmConfig {
                kernel: Some(kernel),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(kmm.weights().len(), fresh.weights().len());
        for (a, b) in kmm.weights().iter().zip(fresh.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reweight_rejects_bad_inputs() {
        let (tr, te) = shifted_sets(16);
        let mut kmm = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        let one = Matrix::from_rows(&[&[0.0]]).unwrap();
        assert!(kmm
            .reweight_observed(&one, &KmmConfig::default(), &RunContext::new())
            .is_err());
        let wide = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(kmm
            .reweight_observed(&wide, &KmmConfig::default(), &RunContext::new())
            .is_err());
        let mut bad = te.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(kmm
            .reweight_observed(&bad, &KmmConfig::default(), &RunContext::new())
            .is_err());
    }

    #[test]
    fn shifted_population_rejects_negative_jitter() {
        let (tr, te) = shifted_sets(6);
        let kmm = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(kmm.shifted_population(&mut rng, 10, -0.1).is_err());
    }

    #[test]
    fn low_rank_paths_shift_mass_toward_test_region() {
        let (tr, te) = shifted_sets(12);
        for approx in [
            KernelApprox::Nystrom { rank: 30 },
            KernelApprox::Rff { features: 512 },
        ] {
            let cfg = KmmConfig {
                approx,
                ..Default::default()
            };
            let kmm = KernelMeanMatching::fit(&tr, &te, &cfg).unwrap();
            let wmean = {
                let total: f64 = kmm.weights().iter().sum();
                tr.col(0)
                    .iter()
                    .zip(kmm.weights())
                    .map(|(x, w)| x * w)
                    .sum::<f64>()
                    / total
            };
            let raw_mean = descriptive::mean(&tr.col(0)).unwrap();
            let te_mean = descriptive::mean(&te.col(0)).unwrap();
            assert!(
                (wmean - te_mean).abs() < (raw_mean - te_mean).abs(),
                "{approx:?}: weighted mean {wmean} not closer to {te_mean} than raw {raw_mean}"
            );
            // Post-fit diagnostics keep working on the low-rank backing.
            assert!(kmm.mmd_objective(&te).unwrap().is_finite());
        }
    }

    #[test]
    fn full_rank_nystrom_weights_near_optimal_for_exact_objective() {
        let (tr, te) = shifted_sets(13);
        let exact = KernelMeanMatching::fit(&tr, &te, &KmmConfig::default()).unwrap();
        // Rank = n_tr Nyström reproduces the Gram matrix (up to roundoff).
        // The two QP trajectories stop at different near-optimal iterates
        // (different Lipschitz estimates → step sizes), so compare by the
        // exact MMD objective: the low-rank weights must score on par with
        // the dense-path weights, both evaluated with exact kernels.
        let cfg = KmmConfig {
            approx: KernelApprox::Nystrom { rank: tr.nrows() },
            ..Default::default()
        };
        let lowrank = KernelMeanMatching::fit(&tr, &te, &cfg).unwrap();
        let exact_obj = exact.mmd_objective(&te).unwrap();
        let lowrank_obj = KernelMeanMatching {
            weights: lowrank.weights().to_vec(),
            backing: KmmBacking::Exact(GramMatrix::symmetric(exact.kernel(), &tr)),
            train: tr.clone(),
        }
        .mmd_objective(&te)
        .unwrap();
        assert!(
            lowrank_obj <= exact_obj + 0.05 * exact_obj.abs().max(1e-6),
            "low-rank weights score {lowrank_obj} vs exact {exact_obj}"
        );
    }

    #[test]
    fn low_rank_fit_bit_identical_across_thread_counts() {
        let (tr, te) = shifted_sets(14);
        let cfg = KmmConfig {
            approx: KernelApprox::Rff { features: 128 },
            ..Default::default()
        };
        let reference =
            sidefp_parallel::with_threads(1, || KernelMeanMatching::fit(&tr, &te, &cfg).unwrap());
        let wide =
            sidefp_parallel::with_threads(8, || KernelMeanMatching::fit(&tr, &te, &cfg).unwrap());
        for (a, b) in reference.weights().iter().zip(wide.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_invalid_approx_config() {
        let (tr, te) = shifted_sets(15);
        let cfg = KmmConfig {
            approx: KernelApprox::Rff { features: 0 },
            ..Default::default()
        };
        assert!(KernelMeanMatching::fit(&tr, &te, &cfg).is_err());
    }

    #[test]
    fn weights_respect_box() {
        let (tr, te) = shifted_sets(8);
        let cfg = KmmConfig {
            upper: 3.0,
            ..Default::default()
        };
        let kmm = KernelMeanMatching::fit(&tr, &te, &cfg).unwrap();
        for w in kmm.weights() {
            assert!(*w >= -1e-9 && *w <= 3.0 + 1e-9, "weight {w} outside box");
        }
    }
}
