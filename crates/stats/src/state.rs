//! Plain-data snapshots of fitted models.
//!
//! Every learner the pipeline persists (scaler, one-class SVM, MARS /
//! ridge / k-NN regressors, adaptive KDE) can export its fitted
//! parameters as one of these POD structs and be reconstructed from it
//! bit-identically. The structs deliberately contain nothing but numbers
//! and matrices: serialization lives with the caller (the core crate's
//! artifact codec), not here, so the statistics substrate stays free of
//! any on-disk format.
//!
//! Reconstruction validates shape and finiteness and returns typed
//! [`StatsError`]s — a corrupted or hand-built state never produces a
//! model that would poison downstream scoring silently.

use sidefp_linalg::Matrix;

use crate::knn::KnnRegressor;
use crate::mars::{Hinge, Mars};
use crate::ridge::PolynomialRidge;
use crate::{Kernel, Regressor, StatsError};

/// Fitted parameters of a [`crate::StandardScaler`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerState {
    /// Per-column means.
    pub means: Vec<f64>,
    /// Per-column standard deviations (zero-variance columns report 1).
    pub stds: Vec<f64>,
}

/// How a trained [`crate::OneClassSvm`] evaluates its kernel sum — the
/// public mirror of the internal decision representation.
#[derive(Debug, Clone, PartialEq)]
pub enum SvmDecisionState {
    /// Classic kernel expansion `f(x) = Σ_l coeffs_l · k(points_l, x) − ρ`
    /// (exact and Nyström fits).
    Expansion {
        /// Support / landmark points, one per row.
        points: Matrix,
        /// Expansion coefficients, one per point row.
        coeffs: Vec<f64>,
    },
    /// Random Fourier feature map
    /// `f(x) = Σ_j w_j · scale · cos(ω_jᵀx + b_j) − ρ` (RFF fits).
    RandomFeatures {
        /// Frequency matrix ω, one frequency per row.
        omega: Matrix,
        /// Phase offsets `b`, one per frequency.
        offsets: Vec<f64>,
        /// Feature-map scale factor.
        scale: f64,
        /// Feature-space weights, one per frequency.
        w: Vec<f64>,
    },
}

/// Fitted parameters of a [`crate::OneClassSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmState {
    /// The decision-function representation.
    pub decision: SvmDecisionState,
    /// Decision-function offset ρ.
    pub rho: f64,
    /// Kernel the model was trained with.
    pub kernel: Kernel,
    /// Input dimension.
    pub input_dim: usize,
    /// The ν the model was trained with.
    pub nu: f64,
    /// ν-property support-vector count of the fitted dual.
    pub support_count: usize,
    /// Preserved full dual iterate (empty on low-rank approximation fits).
    pub dual_alpha: Vec<f64>,
    /// Pairwise SMO updates the fit consumed.
    pub solve_iterations: usize,
}

/// One MARS basis function: a product of hinges and raw linear terms.
#[derive(Debug, Clone, PartialEq)]
pub struct MarsBasisState {
    /// Hinge factors `max(0, ±(x_j − t))`.
    pub hinges: Vec<Hinge>,
    /// Features entering the product as raw linear factors.
    pub linear: Vec<usize>,
}

/// Fitted parameters of a [`crate::mars::Mars`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct MarsState {
    /// Surviving basis functions, in coefficient order.
    pub bases: Vec<MarsBasisState>,
    /// Least-squares coefficients, one per basis.
    pub coefficients: Vec<f64>,
    /// Input dimension.
    pub input_dim: usize,
    /// Generalized cross-validation score of the pruned model.
    pub gcv: f64,
}

/// Fitted parameters of a [`crate::ridge::PolynomialRidge`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeState {
    /// Ridge coefficients, one per monomial.
    pub coefficients: Vec<f64>,
    /// Per-monomial exponent vectors (one exponent per input feature).
    pub exponents: Vec<Vec<u32>>,
    /// Input dimension.
    pub input_dim: usize,
}

/// Fitted parameters of a [`crate::knn::KnnRegressor`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnState {
    /// Training inputs, one sample per row.
    pub x: Matrix,
    /// Training targets, one per row of `x`.
    pub y: Vec<f64>,
    /// Neighbour count.
    pub k: usize,
}

/// Fitted parameters of a [`crate::kde::AdaptiveKde`].
///
/// Only the independent parameters are stored; the per-point `(h·λ_i)^d`
/// table and the scaling Jacobian are recomputed on reconstruction with
/// the identical arithmetic the fit uses, so a round trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct KdeState {
    /// Standardizer the density is defined under.
    pub scaler: ScalerState,
    /// Standardized training points, one per row.
    pub z: Matrix,
    /// Global bandwidth `h`.
    pub bandwidth: f64,
    /// Per-point adaptive bandwidth factors λ_i.
    pub lambdas: Vec<f64>,
}

/// Fitted parameters of any [`Regressor`] implementation the pipeline can
/// persist.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressorState {
    /// A [`crate::mars::Mars`] spline model.
    Mars(MarsState),
    /// A [`crate::ridge::PolynomialRidge`] model.
    Ridge(RidgeState),
    /// A [`crate::knn::KnnRegressor`] model.
    Knn(KnnState),
}

/// Reconstructs a boxed [`Regressor`] from its exported state.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] when the state is internally
/// inconsistent (mismatched lengths, non-finite values, out-of-range
/// feature indices).
pub fn regressor_from_state(state: RegressorState) -> Result<Box<dyn Regressor>, StatsError> {
    Ok(match state {
        RegressorState::Mars(s) => Box::new(Mars::from_state(s)?),
        RegressorState::Ridge(s) => Box::new(PolynomialRidge::from_state(s)?),
        RegressorState::Knn(s) => Box::new(KnnRegressor::from_state(s)?),
    })
}

/// Shared validation: every value in `values` must be finite.
pub(crate) fn require_finite(name: &'static str, values: &[f64]) -> Result<(), StatsError> {
    if values.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name,
            reason: "contains a non-finite value".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnConfig;
    use crate::mars::MarsConfig;
    use crate::ridge::RidgeConfig;

    fn training_data() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_fn(40, 2, |i, j| (i as f64 / 10.0) + j as f64);
        let y: Vec<f64> = (0..40).map(|i| (i as f64 / 10.0).sin() + 2.0).collect();
        (x, y)
    }

    #[test]
    fn every_regressor_kind_round_trips_bit_exactly() {
        let (x, y) = training_data();
        let models: Vec<Box<dyn Regressor>> = vec![
            Box::new(Mars::fit(&x, &y, &MarsConfig::default()).unwrap()),
            Box::new(PolynomialRidge::fit(&x, &y, &RidgeConfig::default()).unwrap()),
            Box::new(KnnRegressor::fit(&x, &y, &KnnConfig::default()).unwrap()),
        ];
        for model in models {
            let state = model.export_state().expect("persistable regressor");
            let rebuilt = regressor_from_state(state.clone()).unwrap();
            assert_eq!(rebuilt.export_state().unwrap(), state);
            for row in x.rows_iter() {
                let a = model.predict(row).unwrap();
                let b = rebuilt.predict(row).unwrap();
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn corrupt_regressor_states_are_rejected() {
        let (x, y) = training_data();
        let mars = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        let mut s = mars.export_state();
        s.coefficients.push(1.0);
        assert!(Mars::from_state(s).is_err());

        let ridge = PolynomialRidge::fit(&x, &y, &RidgeConfig::default()).unwrap();
        let mut s = ridge.export_state();
        s.coefficients[0] = f64::NAN;
        assert!(PolynomialRidge::from_state(s).is_err());

        let knn = KnnRegressor::fit(&x, &y, &KnnConfig::default()).unwrap();
        let mut s = knn.export_state();
        s.k = 0;
        assert!(KnnRegressor::from_state(s).is_err());
    }
}
