//! Two-sample testing via maximum mean discrepancy (MMD).
//!
//! Answers "do these two populations come from the same distribution?"
//! with a permutation p-value — the quantitative version of the paper's
//! visual Figure-4 overlap argument. Used to certify that a synthetic
//! trusted population (S5) is statistically indistinguishable from the
//! measured Trojan-free devices, and that the Trojan clusters are not.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sidefp_linalg::Matrix;

use crate::{GramMatrix, Kernel, StatsError};

/// Result of a permutation MMD test.
#[derive(Debug, Clone, PartialEq)]
pub struct MmdTest {
    /// The observed (biased, V-statistic) squared MMD.
    pub statistic: f64,
    /// Permutation p-value: fraction of label permutations with an MMD at
    /// least as large as observed.
    pub p_value: f64,
    /// Number of permutations used.
    pub permutations: usize,
}

impl MmdTest {
    /// `true` if the null "same distribution" is rejected at `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Biased squared-MMD V-statistic between rows `a_idx` and `b_idx` of a
/// precomputed joint Gram matrix.
fn mmd_sq(gram: &GramMatrix, a_idx: &[usize], b_idx: &[usize]) -> f64 {
    let na = a_idx.len() as f64;
    let nb = b_idx.len() as f64;
    let aa = gram.block_sum(a_idx, a_idx);
    let bb = gram.block_sum(b_idx, b_idx);
    let ab = gram.block_sum(a_idx, b_idx);
    aa / (na * na) + bb / (nb * nb) - 2.0 * ab / (na * nb)
}

/// Permutation two-sample MMD test between the rows of `a` and `b`.
///
/// The kernel defaults to the RBF median heuristic on the pooled sample
/// when `kernel` is `None`. The test statistic is the biased V-statistic;
/// the null distribution is approximated by `permutations` random label
/// reshuffles (seeded, deterministic).
///
/// # Errors
///
/// - [`StatsError::InsufficientData`] if either sample has fewer than two
///   rows, or `permutations == 0`.
/// - [`StatsError::DimensionMismatch`] on column mismatch.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::mmd_test::mmd_permutation_test;
///
/// # fn main() -> Result<(), sidefp_stats::StatsError> {
/// let a = Matrix::from_fn(30, 1, |i, _| (i % 10) as f64 * 0.1);
/// let b = Matrix::from_fn(30, 1, |i, _| (i % 10) as f64 * 0.1 + 5.0);
/// let test = mmd_permutation_test(&a, &b, None, 200, 7)?;
/// assert!(test.rejects_at(0.05)); // shifted by 5: clearly different
/// # Ok(())
/// # }
/// ```
pub fn mmd_permutation_test(
    a: &Matrix,
    b: &Matrix,
    kernel: Option<Kernel>,
    permutations: usize,
    seed: u64,
) -> Result<MmdTest, StatsError> {
    if a.nrows() < 2 || b.nrows() < 2 {
        return Err(StatsError::InsufficientData {
            needed: 2,
            got: a.nrows().min(b.nrows()),
        });
    }
    if a.ncols() != b.ncols() {
        return Err(StatsError::DimensionMismatch {
            expected: a.ncols(),
            got: b.ncols(),
        });
    }
    if permutations == 0 {
        return Err(StatsError::InsufficientData { needed: 1, got: 0 });
    }

    let pooled = a.vstack(b)?;
    let gram = match kernel {
        Some(k) => {
            k.validate()?;
            GramMatrix::symmetric(k, &pooled)
        }
        None => {
            // One GEMM-form distance pass serves both the median-heuristic
            // bandwidth and the RBF Gram — previously each ran its own
            // O(n²·d) pairwise sweep over the pooled sample.
            let d2 = crate::gram::pairwise_squared_distances(&pooled);
            let k = Kernel::rbf_median_heuristic_from_sq_distances(&d2)?;
            GramMatrix::from_squared_distances(k, d2)?
        }
    };

    let na = a.nrows();
    let n = pooled.nrows();
    let a_idx: Vec<usize> = (0..na).collect();
    let b_idx: Vec<usize> = (na..n).collect();
    let statistic = mmd_sq(&gram, &a_idx, &b_idx);

    // Each permutation shuffles its own identity vector with an RNG
    // stream forked from the seed, so the null distribution is a pure
    // function of `seed` — independent of both evaluation order and
    // thread count.
    let exceeded = sidefp_parallel::map_indexed(permutations, |p| {
        let mut rng = StdRng::seed_from_u64(sidefp_parallel::fork_seed(seed, p as u64));
        let mut indices: Vec<usize> = (0..n).collect();
        // Fisher–Yates shuffle, then split at na.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            indices.swap(i, j);
        }
        mmd_sq(&gram, &indices[..na], &indices[na..]) >= statistic
    });
    let at_least = exceeded.into_iter().filter(|e| *e).count();
    // Add-one smoothing keeps the p-value away from an impossible 0.
    let p_value = (at_least + 1) as f64 / (permutations + 1) as f64;

    Ok(MmdTest {
        statistic,
        p_value,
        permutations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(mean: f64, n: usize, seed: u64) -> Matrix {
        let mvn = MultivariateNormal::independent(vec![mean, mean], &[1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_matrix(&mut rng, n)
    }

    #[test]
    fn same_distribution_is_not_rejected() {
        let a = blob(0.0, 40, 1);
        let b = blob(0.0, 40, 2);
        let test = mmd_permutation_test(&a, &b, None, 200, 3).unwrap();
        assert!(
            !test.rejects_at(0.01),
            "same-distribution p-value {}",
            test.p_value
        );
    }

    #[test]
    fn shifted_distribution_is_rejected() {
        let a = blob(0.0, 40, 4);
        let b = blob(2.0, 40, 5);
        let test = mmd_permutation_test(&a, &b, None, 200, 6).unwrap();
        assert!(test.rejects_at(0.01), "p-value {}", test.p_value);
        assert!(test.statistic > 0.0);
    }

    #[test]
    fn scale_difference_is_rejected() {
        let mvn_wide = MultivariateNormal::independent(vec![0.0, 0.0], &[3.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let a = blob(0.0, 50, 8);
        let b = mvn_wide.sample_matrix(&mut rng, 50);
        let test = mmd_permutation_test(&a, &b, None, 200, 9).unwrap();
        assert!(test.rejects_at(0.05), "p-value {}", test.p_value);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = blob(0.0, 20, 10);
        let b = blob(0.5, 20, 11);
        let t1 = mmd_permutation_test(&a, &b, None, 100, 12).unwrap();
        let t2 = mmd_permutation_test(&a, &b, None, 100, 12).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn identical_at_any_thread_count() {
        let a = blob(0.0, 25, 20);
        let b = blob(0.7, 25, 21);
        let reference = sidefp_parallel::with_threads(1, || {
            mmd_permutation_test(&a, &b, None, 80, 22).unwrap()
        });
        for threads in [2, 8] {
            let got = sidefp_parallel::with_threads(threads, || {
                mmd_permutation_test(&a, &b, None, 80, 22).unwrap()
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn explicit_kernel_is_honored() {
        let a = blob(0.0, 20, 13);
        let b = blob(1.0, 20, 14);
        let test = mmd_permutation_test(&a, &b, Some(Kernel::Rbf { gamma: 0.5 }), 100, 15).unwrap();
        assert_eq!(test.permutations, 100);
        assert!(mmd_permutation_test(&a, &b, Some(Kernel::Rbf { gamma: -1.0 }), 100, 15).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = blob(0.0, 20, 16);
        let one = blob(0.0, 1, 17);
        assert!(mmd_permutation_test(&one, &a, None, 100, 0).is_err());
        assert!(mmd_permutation_test(&a, &one, None, 100, 0).is_err());
        assert!(mmd_permutation_test(&a, &a, None, 0, 0).is_err());
        let wide = Matrix::zeros(10, 3);
        assert!(mmd_permutation_test(&a, &wide, None, 100, 0).is_err());
    }
}
