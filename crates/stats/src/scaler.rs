use sidefp_linalg::Matrix;

use crate::{descriptive, StatsError};

/// Z-score feature standardizer.
///
/// Kernel methods (OC-SVM, KMM) and KDE are scale-sensitive; fingerprint
/// coordinates measured in different physical units (power, delay) must be
/// standardized before a shared kernel width makes sense. The scaler is
/// fitted on a training matrix and can then transform and inverse-transform
/// arbitrary data of the same dimension.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::StandardScaler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = Matrix::from_rows(&[&[10.0, 0.0], &[20.0, 1.0], &[30.0, 2.0]])?;
/// let scaler = StandardScaler::fit(&data)?;
/// let z = scaler.transform(&data)?;
/// assert!(z.col(0).iter().sum::<f64>().abs() < 1e-12);
/// let back = scaler.inverse_transform(&z)?;
/// assert!((&back - &data)?.max_abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-column mean and standard deviation.
    ///
    /// Columns with zero variance get a unit scale so that transforming
    /// them is a pure mean shift rather than a division by zero.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] if `data` has fewer than two
    /// rows.
    pub fn fit(data: &Matrix) -> Result<Self, StatsError> {
        if data.nrows() < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: data.nrows(),
            });
        }
        let mut means = Vec::with_capacity(data.ncols());
        let mut stds = Vec::with_capacity(data.ncols());
        for j in 0..data.ncols() {
            let col = data.col(j);
            let mean = descriptive::mean(&col)?;
            means.push(mean);
            let s = descriptive::std_dev(&col)?;
            // Columns that are constant up to floating-point round-off must
            // be treated as zero-variance, or the z-scores explode.
            let floor = mean.abs() * 1e-9 + 1e-12;
            stds.push(if s > floor { s } else { 1.0 });
        }
        Ok(StandardScaler { means, stds })
    }

    /// Reconstructs a scaler from previously fitted parameters (see
    /// [`StandardScaler::means`] / [`StandardScaler::stds`]), e.g. when
    /// loading a persisted model artifact. Transforms of the rebuilt scaler
    /// are bit-identical to the original.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when the vectors are empty
    /// or of different lengths, a mean is non-finite, or a standard
    /// deviation is not strictly positive and finite.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Result<Self, StatsError> {
        if means.is_empty() || means.len() != stds.len() {
            return Err(StatsError::InvalidParameter {
                name: "scaler",
                reason: format!("{} means vs {} stds", means.len(), stds.len()),
            });
        }
        if means.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidParameter {
                name: "scaler.means",
                reason: "contains a non-finite value".into(),
            });
        }
        if stds.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(StatsError::InvalidParameter {
                name: "scaler.stds",
                reason: "every std must be strictly positive and finite".into(),
            });
        }
        Ok(StandardScaler { means, stds })
    }

    /// Dimension the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Fitted per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-column standard deviations (zero-variance columns report 1).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transforms a matrix to z-scores.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on column-count mismatch.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, StatsError> {
        if data.ncols() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: data.ncols(),
            });
        }
        Ok(Matrix::from_fn(data.nrows(), data.ncols(), |i, j| {
            (data[(i, j)] - self.means[j]) / self.stds[j]
        }))
    }

    /// Transforms a single sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on length mismatch.
    pub fn transform_sample(&self, sample: &[f64]) -> Result<Vec<f64>, StatsError> {
        if sample.len() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: sample.len(),
            });
        }
        Ok(sample
            .iter()
            .enumerate()
            .map(|(j, v)| (v - self.means[j]) / self.stds[j])
            .collect())
    }

    /// Allocation-free form of [`StandardScaler::transform_sample`]: writes
    /// the z-scores into `out` with the identical arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `sample` or `out`
    /// length differs from the fitted dimension.
    pub fn transform_sample_into(&self, sample: &[f64], out: &mut [f64]) -> Result<(), StatsError> {
        if sample.len() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: sample.len(),
            });
        }
        if out.len() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: out.len(),
            });
        }
        for (j, (o, v)) in out.iter_mut().zip(sample).enumerate() {
            *o = (v - self.means[j]) / self.stds[j];
        }
        Ok(())
    }

    /// Maps z-scores back to the original units.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on column-count mismatch.
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix, StatsError> {
        if data.ncols() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: data.ncols(),
            });
        }
        Ok(Matrix::from_fn(data.nrows(), data.ncols(), |i, j| {
            data[(i, j)] * self.stds[j] + self.means[j]
        }))
    }

    /// Maps a single z-scored sample back to original units.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] on length mismatch.
    pub fn inverse_transform_sample(&self, sample: &[f64]) -> Result<Vec<f64>, StatsError> {
        if sample.len() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: sample.len(),
            });
        }
        Ok(sample
            .iter()
            .enumerate()
            .map(|(j, v)| v * self.stds[j] + self.means[j])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Matrix {
        Matrix::from_rows(&[&[10.0, 5.0], &[20.0, 5.0], &[30.0, 5.0]]).unwrap()
    }

    #[test]
    fn transform_centers_and_scales() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let z = s.transform(&d).unwrap();
        let col0 = z.col(0);
        assert!(descriptive::mean(&col0).unwrap().abs() < 1e-12);
        assert!((descriptive::std_dev(&col0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_column_is_mean_shifted_only() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        assert_eq!(s.stds()[1], 1.0);
        let z = s.transform(&d).unwrap();
        assert!(z.col(1).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn roundtrip() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let z = s.transform(&d).unwrap();
        let back = s.inverse_transform(&z).unwrap();
        assert!((&back - &d).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn sample_roundtrip() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let z = s.transform_sample(&[25.0, 5.0]).unwrap();
        let back = s.inverse_transform_sample(&z).unwrap();
        assert!((back[0] - 25.0).abs() < 1e-12);
        assert!((back[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let s = StandardScaler::fit(&data()).unwrap();
        assert!(s.transform(&Matrix::zeros(2, 3)).is_err());
        assert!(s.transform_sample(&[1.0]).is_err());
        assert!(s.inverse_transform(&Matrix::zeros(2, 3)).is_err());
        assert!(s.inverse_transform_sample(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn needs_two_rows() {
        assert!(StandardScaler::fit(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn getters_expose_fit() {
        let s = StandardScaler::fit(&data()).unwrap();
        assert_eq!(s.dim(), 2);
        assert!((s.means()[0] - 20.0).abs() < 1e-12);
        assert!((s.stds()[0] - 10.0).abs() < 1e-12);
    }
}
