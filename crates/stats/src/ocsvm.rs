use sidefp_linalg::{gemm, vecops, Matrix};
use sidefp_obs::RunContext;

use crate::approx::{self, DecisionParts, KernelApprox, KernelFeatureMap};
use crate::qp::{SmoConfig, SmoSolver};
use crate::state::{SvmDecisionState, SvmState};
use crate::{
    check_finite_matrix, check_finite_slice, GramMatrix, Kernel, KernelRowCache, StatsError,
};

/// Relaxation factor for accepting a best-effort SMO solution: a KKT gap
/// within 100× the configured tolerance is still a usable boundary.
const SMO_RELAXED_FACTOR: f64 = 100.0;

/// Above this many training rows the dense Gram matrix (8·n² bytes) is
/// swapped for a [`KernelRowCache`]: at 4096 rows the dense matrix already
/// costs 134 MB, and the cache bounds memory at `capacity · n` instead.
const DENSE_GRAM_LIMIT: usize = 4096;

/// Rows held by the kernel-row cache on the large-`n` path — sized to keep
/// the SMO working set (a few hot support-vector rows) resident.
const KERNEL_CACHE_ROWS: usize = 64;

/// Configuration for the ν-one-class SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneClassSvmConfig {
    /// Fraction `ν ∈ (0, 1]` of training points allowed outside the
    /// boundary (and lower bound on the fraction of support vectors).
    pub nu: f64,
    /// Kernel; the RBF kernel yields the closed boundaries the paper's
    /// trusted regions need.
    pub kernel: Kernel,
    /// KKT tolerance of the SMO solver.
    pub tol: f64,
    /// Iteration budget of the SMO solver.
    pub max_iter: usize,
    /// Kernel evaluation strategy: exact Gram rows, or a sub-quadratic
    /// low-rank approximation (Nyström / random Fourier features). The
    /// default [`KernelApprox::Auto`] keeps every population up to
    /// [`KernelApprox::AUTO_EXACT_LIMIT`] rows on the exact path, so
    /// existing pipelines are value-identical.
    pub approx: KernelApprox,
}

impl Default for OneClassSvmConfig {
    fn default() -> Self {
        OneClassSvmConfig {
            nu: 0.05,
            kernel: Kernel::Rbf { gamma: 1.0 },
            tol: 1e-6,
            max_iter: 200_000,
            approx: KernelApprox::Auto,
        }
    }
}

/// A trained ν-one-class SVM (Schölkopf et al. 2001).
///
/// This is the paper's one-class classifier: trained on a trusted
/// fingerprint population, its decision boundary *is* the trusted region
/// (B1–B5). Points with non-negative decision value are inliers
/// (Trojan-free verdict); negative values are outliers (Trojan-infested
/// verdict).
///
/// The dual `min ½αᵀQα, Σα = 1, 0 ≤ α_i ≤ 1/(νn)` is solved with the
/// workspace [`SmoSolver`]; the offset `ρ` is recovered as the average
/// decision value over on-margin support vectors.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    model: DecisionModel,
    rho: f64,
    kernel: Kernel,
    input_dim: usize,
    trained_nu: f64,
    /// Count of training points with `α > margin_tol` — the ν-property SV
    /// count, independent of how the decision function is represented.
    support_count: usize,
    /// The full dual iterate `α` the SMO solve ended on (all `n` training
    /// coordinates, not just support vectors). Preserved so a later fit on
    /// drifted-but-similar data can warm-start near this optimum; empty on
    /// the low-rank approximation paths, whose feature-space decomposition
    /// solver keeps its own working-set state.
    dual_alpha: Vec<f64>,
    /// Pairwise SMO updates the fit consumed — the cost figure warm-start
    /// callers compare against a cold fit.
    solve_iterations: usize,
}

/// How a trained boundary evaluates `Σ_i α_i k(x_i, x)`.
///
/// The exact and Nyström paths both use the classic kernel expansion
/// (Nyström collapses its feature-space weight vector back onto the
/// landmarks exactly); the RFF path keeps the explicit random feature map.
#[derive(Debug, Clone)]
enum DecisionModel {
    /// `f(x) = Σ_l coeffs_l · k(points_l, x) − ρ`.
    KernelExpansion { points: Matrix, coeffs: Vec<f64> },
    /// `f(x) = Σ_j w_j · scale · cos(ω_jᵀx + b_j) − ρ`.
    RandomFeatures {
        omega: Matrix,
        offsets: Vec<f64>,
        scale: f64,
        w: Vec<f64>,
    },
}

impl OneClassSvm {
    /// Fits the SVM to the rows of `data`, reporting any SMO rescue into a
    /// throwaway [`RunContext`].
    ///
    /// Pipeline code should prefer [`OneClassSvm::fit_observed`], which
    /// reports into the run's own [`RunContext`].
    ///
    /// # Errors
    ///
    /// See [`OneClassSvm::fit_observed`].
    pub fn fit(data: &Matrix, config: &OneClassSvmConfig) -> Result<Self, StatsError> {
        Self::fit_observed(data, config, &RunContext::new())
    }

    /// Fits the SVM to the rows of `data`, reporting any relaxed-tolerance
    /// SMO acceptance or non-convergence into `obs` (a counter bump plus a
    /// `rescue` trace event).
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] for fewer than two rows.
    /// - [`StatsError::InvalidParameter`] for zero feature columns,
    ///   non-finite training entries, `ν ∉ (0, 1]` or invalid kernel
    ///   hyper-parameters.
    pub fn fit_observed(
        data: &Matrix,
        config: &OneClassSvmConfig,
        obs: &RunContext,
    ) -> Result<Self, StatsError> {
        Self::fit_inner(data, config, None, obs)
    }

    /// Fits the SVM warm-started from a previous fit's preserved dual
    /// iterate (see [`OneClassSvm::dual_alpha`]). On the exact kernel paths
    /// the SMO solve starts from `start` (repaired onto the feasible
    /// simplex) instead of the uniform point, typically converging in a
    /// small fraction of a cold fit's updates when `data` has only drifted
    /// from the population `start` was fitted on. The fitted model is
    /// defined by the KKT conditions of the *new* data, so a converged warm
    /// fit matches a cold fit up to solver tolerance.
    ///
    /// On the low-rank approximation paths the start is ignored and the fit
    /// behaves exactly like [`OneClassSvm::fit_observed`].
    ///
    /// # Errors
    ///
    /// All of [`OneClassSvm::fit_observed`]'s errors, plus
    /// [`StatsError::DimensionMismatch`] when `start.len()` differs from the
    /// row count of `data` and [`StatsError::InvalidParameter`] for
    /// non-finite start entries.
    pub fn fit_warm_observed(
        data: &Matrix,
        config: &OneClassSvmConfig,
        start: &[f64],
        obs: &RunContext,
    ) -> Result<Self, StatsError> {
        if start.len() != data.nrows() {
            return Err(StatsError::DimensionMismatch {
                expected: data.nrows(),
                got: start.len(),
            });
        }
        Self::fit_inner(data, config, Some(start), obs)
    }

    fn fit_inner(
        data: &Matrix,
        config: &OneClassSvmConfig,
        warm: Option<&[f64]>,
        obs: &RunContext,
    ) -> Result<Self, StatsError> {
        let n = data.nrows();
        if n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: n });
        }
        if data.ncols() == 0 {
            return Err(StatsError::InvalidParameter {
                name: "data",
                reason: "matrix has no feature columns".into(),
            });
        }
        check_finite_matrix("data", data)?;
        if !(config.nu > 0.0 && config.nu <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "nu",
                reason: format!("must be in (0, 1], got {}", config.nu),
            });
        }
        config.kernel.validate()?;
        config.approx.validate()?;

        let c = 1.0 / (config.nu * n as f64);
        let smo_cfg = SmoConfig {
            upper: c,
            tol: config.tol,
            max_iter: config.max_iter,
        };
        // Route the dual solve: exact Gram rows (dense up to
        // DENSE_GRAM_LIMIT, memory-bounded kernel-row cache beyond), or a
        // low-rank feature map solved in feature space — O(n·rank) per
        // sweep instead of O(n²).
        let resolved = config.approx.resolve(n, &config.kernel);
        let (sol, map) = match resolved {
            KernelApprox::Nystrom { rank } => {
                let map = KernelFeatureMap::nystrom(
                    config.kernel,
                    data,
                    rank,
                    approx::approx_fit_seed(n),
                )?;
                let sol = approx::solve_feature_smo(map.features(), &smo_cfg)?;
                (sol, Some(map))
            }
            KernelApprox::Rff { features } => {
                let map = KernelFeatureMap::rff(
                    config.kernel,
                    data,
                    features,
                    approx::approx_fit_seed(n),
                )?;
                let sol = approx::solve_feature_smo(map.features(), &smo_cfg)?;
                (sol, Some(map))
            }
            _ => {
                let smo = SmoSolver::new(smo_cfg);
                let sol = if n <= DENSE_GRAM_LIMIT {
                    let q = GramMatrix::symmetric(config.kernel, data);
                    match warm {
                        Some(start) => smo.solve_with_start(&mut { q.matrix() }, start)?,
                        None => smo.solve(q.matrix())?,
                    }
                } else {
                    let mut cache = KernelRowCache::new(config.kernel, data, KERNEL_CACHE_ROWS);
                    match warm {
                        Some(start) => smo.solve_with_start(&mut cache, start)?,
                        None => smo.solve_with(&mut cache)?,
                    }
                };
                (sol, None)
            }
        };
        if !sol.converged {
            // Best-effort boundary: record how far from optimal it stopped
            // so RunHealth surfaces the fallback instead of hiding it.
            if sol.kkt_gap <= SMO_RELAXED_FACTOR * config.tol {
                obs.record_smo_relaxed();
                obs.trace_rescue("smo", "relaxed", 1);
            } else {
                obs.record_smo_nonconverged();
                obs.trace_rescue("smo", "nonconverged", 1);
            }
        }

        // ρ = mean decision value over margin SVs (0 < α < C); fall back to
        // all SVs if none are strictly inside the box.
        let margin_tol = c * 1e-6;
        let margin: Vec<usize> = (0..n)
            .filter(|&i| sol.alpha[i] > margin_tol && sol.alpha[i] < c - margin_tol)
            .collect();
        let candidates: Vec<usize> = if margin.is_empty() {
            (0..n).filter(|&i| sol.alpha[i] > margin_tol).collect()
        } else {
            margin
        };
        if candidates.is_empty() {
            return Err(StatsError::DegenerateData(
                "one-class SVM produced no support vectors".into(),
            ));
        }
        let rho =
            candidates.iter().map(|&i| sol.gradient[i]).sum::<f64>() / candidates.len() as f64;

        // Keep only support vectors for prediction.
        let sv_idx: Vec<usize> = (0..n).filter(|&i| sol.alpha[i] > margin_tol).collect();
        let model = match &map {
            None => DecisionModel::KernelExpansion {
                points: data.select_rows(&sv_idx),
                coeffs: sv_idx.iter().map(|&i| sol.alpha[i]).collect(),
            },
            Some(map) => {
                // Feature-space weights w = Φᵀα, collapsed onto whatever
                // standalone form the map supports.
                let w = map.features().vecmat(&sol.alpha)?;
                match map.decision_parts(&w)? {
                    DecisionParts::Expansion { points, coeffs } => {
                        DecisionModel::KernelExpansion { points, coeffs }
                    }
                    DecisionParts::Random {
                        omega,
                        offsets,
                        scale,
                        w,
                    } => DecisionModel::RandomFeatures {
                        omega,
                        offsets,
                        scale,
                        w,
                    },
                }
            }
        };

        Ok(OneClassSvm {
            model,
            rho,
            kernel: config.kernel,
            input_dim: data.ncols(),
            trained_nu: config.nu,
            support_count: sv_idx.len(),
            solve_iterations: sol.iterations,
            dual_alpha: if map.is_none() { sol.alpha } else { Vec::new() },
        })
    }

    /// Signed decision value: positive inside the trusted region, negative
    /// outside, zero on the boundary.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] on length mismatch.
    /// - [`StatsError::InvalidParameter`] for non-finite query entries
    ///   (a NaN would otherwise poison the kernel sum silently).
    pub fn decision_function(&self, x: &[f64]) -> Result<f64, StatsError> {
        if x.len() != self.input_dim {
            return Err(StatsError::DimensionMismatch {
                expected: self.input_dim,
                got: x.len(),
            });
        }
        check_finite_slice("x", x)?;
        Ok(self.decision_value(x))
    }

    /// Decision value without the dimension check (callers validate once).
    fn decision_value(&self, x: &[f64]) -> f64 {
        let sum: f64 = match &self.model {
            DecisionModel::KernelExpansion { points, coeffs } => {
                self.kernel_expansion_sum(points, coeffs, x)
            }
            DecisionModel::RandomFeatures {
                omega,
                offsets,
                scale,
                w,
            } => omega
                .rows_iter()
                .zip(offsets)
                .zip(w)
                .map(|((om, b), wj)| wj * (vecops::dot(om, x) + b).cos() * scale)
                .sum(),
        };
        sum - self.rho
    }

    /// The support-vector kernel sum `Σ αᵢ·k(svᵢ, x)`.
    ///
    /// For the RBF kernel each pair runs the GEMM-form identity
    /// `‖x − sv‖² = (‖x‖² + ‖sv‖² − 2⟨sv, x⟩).max(0)` with ascending
    /// single-accumulator folds for the dot products and norms — the exact
    /// per-element arithmetic of the fused batch path
    /// ([`gemm::rbf_expansion_rows`]), so pointwise and batched decisions
    /// are bit-identical. The exponentials are batched over fixed-size
    /// strips of support vectors: each strip's exponents land in a stack
    /// buffer and go through the 4-wide element-wise [`vecops::exp_mut`],
    /// which gives the scalar map instruction-level parallelism the
    /// one-at-a-time loop cannot. The weighted sum folds strips in
    /// ascending support-vector order with a single accumulator.
    fn kernel_expansion_sum(&self, points: &Matrix, coeffs: &[f64], x: &[f64]) -> f64 {
        const DECISION_STRIP: usize = 64;
        let Kernel::Rbf { gamma } = self.kernel else {
            return points
                .rows_iter()
                .zip(coeffs)
                .map(|(sv, a)| a * self.kernel.eval(sv, x))
                .sum();
        };
        let n = points.nrows();
        let xn = gemm::self_dot_fold(x);
        let mut buf = [0.0f64; DECISION_STRIP];
        let mut sum = 0.0;
        let mut start = 0;
        while start < n {
            let len = DECISION_STRIP.min(n - start);
            for (t, b) in buf[..len].iter_mut().enumerate() {
                let sv = points.row(start + t);
                let mut p = 0.0;
                for (s, q) in sv.iter().zip(x) {
                    p += s * q;
                }
                *b = -gamma * (xn + gemm::self_dot_fold(sv) - 2.0 * p).max(0.0);
            }
            vecops::exp_mut(&mut buf[..len]);
            for (a, b) in coeffs[start..start + len].iter().zip(&buf[..len]) {
                sum += a * b;
            }
            start += len;
        }
        sum
    }

    /// `true` if the point falls inside (or on) the trusted boundary.
    ///
    /// # Errors
    ///
    /// Same as [`OneClassSvm::decision_function`]: dimension mismatch or
    /// non-finite query entries.
    pub fn is_inlier(&self, x: &[f64]) -> Result<bool, StatsError> {
        Ok(self.decision_function(x)? >= 0.0)
    }

    /// Decision values for every row of `x`, scored in parallel.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if `x`'s column count differs
    ///   from the fitted dimension.
    /// - [`StatsError::InvalidParameter`] for non-finite query entries.
    pub fn decision_rows(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        if x.ncols() != self.input_dim {
            return Err(StatsError::DimensionMismatch {
                expected: self.input_dim,
                got: x.ncols(),
            });
        }
        check_finite_matrix("x", x)?;
        Ok(sidefp_parallel::map_indexed(x.nrows(), |i| {
            self.decision_value(x.row(i))
        }))
    }

    /// Allocation-free form of [`OneClassSvm::decision_rows`]: writes the
    /// decision value of every row of `x` into `out`. RBF kernel
    /// expansions run through the chunked packed-GEMM driver
    /// ([`gemm::rbf_expansion_rows`]), whose scratch comes from the
    /// thread-local panel pool; every other representation uses the
    /// allocation-free pointwise sum. Either way the steady state performs
    /// zero heap allocations and values are bit-identical to
    /// [`OneClassSvm::decision_rows`].
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if `x`'s column count differs
    ///   from the fitted dimension or `out.len() != x.nrows()`.
    /// - [`StatsError::InvalidParameter`] for non-finite query entries.
    pub fn decision_rows_into(&self, x: &Matrix, out: &mut [f64]) -> Result<(), StatsError> {
        if x.ncols() != self.input_dim {
            return Err(StatsError::DimensionMismatch {
                expected: self.input_dim,
                got: x.ncols(),
            });
        }
        if out.len() != x.nrows() {
            return Err(StatsError::DimensionMismatch {
                expected: x.nrows(),
                got: out.len(),
            });
        }
        check_finite_matrix("x", x)?;
        if let (DecisionModel::KernelExpansion { points, coeffs }, Kernel::Rbf { gamma }) =
            (&self.model, self.kernel)
        {
            // Batched fused path: chunked packed GEMM + RBF epilogue +
            // coefficient fold, bit-identical to the pointwise loop below
            // (both run the same identity-form per-pair arithmetic).
            gemm::rbf_expansion_rows(x, points, gamma, coeffs, out);
            for o in out.iter_mut() {
                *o -= self.rho;
            }
            return Ok(());
        }
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.decision_value(x.row(i));
        }
        Ok(())
    }

    /// Number of support vectors (training points with `α` above the
    /// margin tolerance). On approximate paths the decision function may be
    /// represented more compactly (landmarks or random features), but this
    /// count still reflects the ν-property of the fitted dual.
    pub fn support_vector_count(&self) -> usize {
        self.support_count
    }

    /// Offset ρ of the decision function.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The ν the model was trained with.
    pub fn nu(&self) -> f64 {
        self.trained_nu
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// The preserved full dual iterate `α` the fit ended on — the warm
    /// start for [`OneClassSvm::fit_warm_observed`] on a drifted
    /// population. Empty when the model was fitted on a low-rank
    /// approximation path (no exact dual is kept there).
    pub fn dual_alpha(&self) -> &[f64] {
        &self.dual_alpha
    }

    /// Pairwise SMO updates the fit consumed. Warm-started refits report
    /// far fewer iterations than cold fits on similar data; callers use the
    /// ratio as a recalibration cost metric.
    pub fn solve_iterations(&self) -> usize {
        self.solve_iterations
    }

    /// Exports the fitted model as a plain-data [`SvmState`] snapshot for
    /// persistence; [`OneClassSvm::from_state`] reconstructs a model whose
    /// decision values are bit-identical.
    pub fn export_state(&self) -> SvmState {
        SvmState {
            decision: match &self.model {
                DecisionModel::KernelExpansion { points, coeffs } => SvmDecisionState::Expansion {
                    points: points.clone(),
                    coeffs: coeffs.clone(),
                },
                DecisionModel::RandomFeatures {
                    omega,
                    offsets,
                    scale,
                    w,
                } => SvmDecisionState::RandomFeatures {
                    omega: omega.clone(),
                    offsets: offsets.clone(),
                    scale: *scale,
                    w: w.clone(),
                },
            },
            rho: self.rho,
            kernel: self.kernel,
            input_dim: self.input_dim,
            nu: self.trained_nu,
            support_count: self.support_count,
            dual_alpha: self.dual_alpha.clone(),
            solve_iterations: self.solve_iterations,
        }
    }

    /// Reconstructs a trained model from an exported [`SvmState`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when the state is
    /// internally inconsistent: kernel hyper-parameters invalid,
    /// `ν ∉ (0, 1]`, non-finite values, or decision-representation shapes
    /// that disagree with `input_dim`.
    pub fn from_state(state: SvmState) -> Result<Self, StatsError> {
        state.kernel.validate()?;
        if !(state.nu > 0.0 && state.nu <= 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "svm.nu",
                reason: format!("must be in (0, 1], got {}", state.nu),
            });
        }
        if !state.rho.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "svm.rho",
                reason: "must be finite".into(),
            });
        }
        if state.input_dim == 0 {
            return Err(StatsError::InvalidParameter {
                name: "svm.input_dim",
                reason: "must be positive".into(),
            });
        }
        crate::state::require_finite("svm.dual_alpha", &state.dual_alpha)?;
        let model = match state.decision {
            SvmDecisionState::Expansion { points, coeffs } => {
                if points.nrows() == 0 || points.ncols() != state.input_dim {
                    return Err(StatsError::InvalidParameter {
                        name: "svm.points",
                        reason: format!(
                            "expected non-empty {}-column matrix, got {}x{}",
                            state.input_dim,
                            points.nrows(),
                            points.ncols()
                        ),
                    });
                }
                if coeffs.len() != points.nrows() {
                    return Err(StatsError::InvalidParameter {
                        name: "svm.coeffs",
                        reason: format!("{} coeffs vs {} points", coeffs.len(), points.nrows()),
                    });
                }
                check_finite_matrix("svm.points", &points)?;
                crate::state::require_finite("svm.coeffs", &coeffs)?;
                DecisionModel::KernelExpansion { points, coeffs }
            }
            SvmDecisionState::RandomFeatures {
                omega,
                offsets,
                scale,
                w,
            } => {
                if omega.nrows() == 0 || omega.ncols() != state.input_dim {
                    return Err(StatsError::InvalidParameter {
                        name: "svm.omega",
                        reason: format!(
                            "expected non-empty {}-column matrix, got {}x{}",
                            state.input_dim,
                            omega.nrows(),
                            omega.ncols()
                        ),
                    });
                }
                if offsets.len() != omega.nrows() || w.len() != omega.nrows() {
                    return Err(StatsError::InvalidParameter {
                        name: "svm.offsets",
                        reason: format!(
                            "{} offsets / {} weights vs {} frequencies",
                            offsets.len(),
                            w.len(),
                            omega.nrows()
                        ),
                    });
                }
                if !scale.is_finite() {
                    return Err(StatsError::InvalidParameter {
                        name: "svm.scale",
                        reason: "must be finite".into(),
                    });
                }
                check_finite_matrix("svm.omega", &omega)?;
                crate::state::require_finite("svm.offsets", &offsets)?;
                crate::state::require_finite("svm.w", &w)?;
                DecisionModel::RandomFeatures {
                    omega,
                    offsets,
                    scale,
                    w,
                }
            }
        };
        Ok(OneClassSvm {
            model,
            rho: state.rho,
            kernel: state.kernel,
            input_dim: state.input_dim,
            trained_nu: state.nu,
            support_count: state.support_count,
            dual_alpha: state.dual_alpha,
            solve_iterations: state.solve_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(n: usize, seed: u64) -> Matrix {
        let mvn = MultivariateNormal::independent(vec![0.0, 0.0], &[1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        mvn.sample_matrix(&mut rng, n)
    }

    fn default_cfg() -> OneClassSvmConfig {
        OneClassSvmConfig {
            nu: 0.1,
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        }
    }

    #[test]
    fn center_in_far_point_out() {
        let svm = OneClassSvm::fit(&blob(100, 1), &default_cfg()).unwrap();
        assert!(svm.is_inlier(&[0.0, 0.0]).unwrap());
        assert!(!svm.is_inlier(&[10.0, 10.0]).unwrap());
        assert!(svm.decision_function(&[0.0, 0.0]).unwrap() > 0.0);
        assert!(svm.decision_function(&[10.0, 10.0]).unwrap() < 0.0);
    }

    #[test]
    fn nu_controls_training_rejection_rate() {
        let data = blob(200, 2);
        for nu in [0.05, 0.2] {
            let cfg = OneClassSvmConfig {
                nu,
                kernel: Kernel::Rbf { gamma: 0.5 },
                ..Default::default()
            };
            let svm = OneClassSvm::fit(&data, &cfg).unwrap();
            let rejected = data
                .rows_iter()
                .filter(|row| svm.decision_function(row).unwrap() < 0.0)
                .count() as f64
                / 200.0;
            // ν is an upper bound on the rejection fraction (within slack).
            assert!(
                rejected <= nu + 0.07,
                "nu = {nu}: rejected fraction {rejected}"
            );
        }
    }

    #[test]
    fn higher_nu_rejects_more() {
        let data = blob(200, 3);
        let count_rejected = |nu: f64| {
            let cfg = OneClassSvmConfig {
                nu,
                kernel: Kernel::Rbf { gamma: 0.5 },
                ..Default::default()
            };
            let svm = OneClassSvm::fit(&data, &cfg).unwrap();
            data.rows_iter()
                .filter(|row| svm.decision_function(row).unwrap() < 0.0)
                .count()
        };
        assert!(count_rejected(0.3) >= count_rejected(0.02));
    }

    #[test]
    fn support_vector_fraction_at_least_nu() {
        let data = blob(100, 4);
        let cfg = OneClassSvmConfig {
            nu: 0.2,
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        };
        let svm = OneClassSvm::fit(&data, &cfg).unwrap();
        // ν-property: at least ν·n support vectors.
        assert!(
            svm.support_vector_count() as f64 >= 0.2 * 100.0 - 1.0,
            "only {} SVs",
            svm.support_vector_count()
        );
    }

    #[test]
    fn separates_shifted_cluster() {
        // Train on cluster at origin; points from a cluster at (4, 4) must
        // be rejected.
        let train = blob(150, 5);
        let svm = OneClassSvm::fit(&train, &default_cfg()).unwrap();
        let mvn = MultivariateNormal::independent(vec![4.0, 4.0], &[0.5, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let outliers = mvn.sample_matrix(&mut rng, 50);
        let rejected = outliers
            .rows_iter()
            .filter(|row| svm.decision_function(row).unwrap() < 0.0)
            .count();
        assert!(rejected >= 48, "only {rejected}/50 outliers rejected");
    }

    #[test]
    fn rejects_bad_parameters() {
        let data = blob(20, 7);
        let bad_nu = OneClassSvmConfig {
            nu: 0.0,
            ..default_cfg()
        };
        assert!(OneClassSvm::fit(&data, &bad_nu).is_err());
        let bad_nu2 = OneClassSvmConfig {
            nu: 1.5,
            ..default_cfg()
        };
        assert!(OneClassSvm::fit(&data, &bad_nu2).is_err());
        let bad_kernel = OneClassSvmConfig {
            kernel: Kernel::Rbf { gamma: -1.0 },
            ..default_cfg()
        };
        assert!(OneClassSvm::fit(&data, &bad_kernel).is_err());
        assert!(OneClassSvm::fit(&Matrix::zeros(1, 2), &default_cfg()).is_err());
    }

    #[test]
    fn rejects_zero_column_matrix_with_typed_error() {
        match OneClassSvm::fit(&Matrix::zeros(5, 0), &default_cfg()) {
            Err(StatsError::InvalidParameter { name: "data", .. }) => {}
            other => panic!("expected InvalidParameter for data, got {other:?}"),
        }
    }

    #[test]
    fn decision_rows_rejects_wrong_width() {
        let svm = OneClassSvm::fit(&blob(30, 11), &default_cfg()).unwrap();
        match svm.decision_rows(&Matrix::zeros(4, 3)) {
            Err(StatsError::DimensionMismatch {
                expected: 2,
                got: 3,
            }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn decision_rows_identical_at_any_thread_count() {
        let data = blob(60, 12);
        let svm = OneClassSvm::fit(&data, &default_cfg()).unwrap();
        let reference = sidefp_parallel::with_threads(1, || svm.decision_rows(&data).unwrap());
        for threads in [2, 8] {
            let got = sidefp_parallel::with_threads(threads, || svm.decision_rows(&data).unwrap());
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn decision_dimension_checked() {
        let svm = OneClassSvm::fit(&blob(30, 8), &default_cfg()).unwrap();
        assert!(svm.decision_function(&[1.0]).is_err());
        assert!(svm.is_inlier(&[1.0]).is_err());
        assert_eq!(svm.input_dim(), 2);
    }

    #[test]
    fn non_finite_training_data_rejected() {
        let mut data = blob(30, 13);
        data[(4, 1)] = f64::NAN;
        match OneClassSvm::fit(&data, &default_cfg()) {
            Err(StatsError::InvalidParameter { name: "data", .. }) => {}
            other => panic!("expected InvalidParameter for data, got {other:?}"),
        }
        let mut data = blob(30, 13);
        data[(0, 0)] = f64::INFINITY;
        assert!(OneClassSvm::fit(&data, &default_cfg()).is_err());
    }

    #[test]
    fn non_finite_queries_rejected() {
        let svm = OneClassSvm::fit(&blob(30, 14), &default_cfg()).unwrap();
        match svm.decision_function(&[f64::NAN, 0.0]) {
            Err(StatsError::InvalidParameter { name: "x", .. }) => {}
            other => panic!("expected InvalidParameter for x, got {other:?}"),
        }
        assert!(svm.is_inlier(&[0.0, f64::NEG_INFINITY]).is_err());
        let mut batch = Matrix::zeros(3, 2);
        batch[(2, 0)] = f64::NAN;
        assert!(svm.decision_rows(&batch).is_err());
    }

    #[test]
    fn decision_rows_into_value_identical_to_decision_rows() {
        let data = blob(80, 15);
        let svm = OneClassSvm::fit(&data, &default_cfg()).unwrap();
        let queries = blob(40, 16);
        let batch = svm.decision_rows(&queries).unwrap();
        let mut out = vec![0.0; queries.nrows()];
        for _ in 0..2 {
            svm.decision_rows_into(&queries, &mut out).unwrap();
            assert_eq!(out, batch);
        }
        assert!(svm
            .decision_rows_into(&Matrix::zeros(2, 3), &mut out)
            .is_err());
        assert!(svm.decision_rows_into(&queries, &mut [0.0; 2]).is_err());
        let mut bad = queries.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(svm.decision_rows_into(&bad, &mut out).is_err());
    }

    #[test]
    fn decision_rows_matches_pointwise() {
        let data = blob(40, 9);
        let svm = OneClassSvm::fit(&data, &default_cfg()).unwrap();
        let batch = svm.decision_rows(&data).unwrap();
        for (i, row) in data.rows_iter().enumerate() {
            assert_eq!(batch[i], svm.decision_function(row).unwrap());
        }
    }

    #[test]
    fn approx_paths_produce_usable_boundaries() {
        let data = blob(150, 17);
        for approx in [
            KernelApprox::Nystrom { rank: 40 },
            KernelApprox::Rff { features: 512 },
        ] {
            let cfg = OneClassSvmConfig {
                approx,
                ..default_cfg()
            };
            let svm = OneClassSvm::fit(&data, &cfg).unwrap();
            assert!(svm.is_inlier(&[0.0, 0.0]).unwrap(), "{approx:?}");
            assert!(!svm.is_inlier(&[10.0, 10.0]).unwrap(), "{approx:?}");
            assert!(svm.support_vector_count() > 0, "{approx:?}");
        }
    }

    #[test]
    fn approx_config_validated() {
        let data = blob(30, 18);
        let bad = OneClassSvmConfig {
            approx: KernelApprox::Nystrom { rank: 0 },
            ..default_cfg()
        };
        assert!(OneClassSvm::fit(&data, &bad).is_err());
        // RFF requires an RBF kernel.
        let bad_kernel = OneClassSvmConfig {
            approx: KernelApprox::Rff { features: 64 },
            kernel: Kernel::Linear,
            ..default_cfg()
        };
        assert!(OneClassSvm::fit(&data, &bad_kernel).is_err());
    }

    #[test]
    fn accessors() {
        let svm = OneClassSvm::fit(&blob(30, 10), &default_cfg()).unwrap();
        assert_eq!(svm.nu(), 0.1);
        assert!(svm.rho().is_finite());
        assert!(svm.support_vector_count() > 0);
    }

    #[test]
    fn state_round_trip_is_bit_identical_on_every_decision_path() {
        let data = blob(120, 19);
        let queries = blob(30, 20);
        for approx in [
            KernelApprox::Exact,
            KernelApprox::Nystrom { rank: 32 },
            KernelApprox::Rff { features: 256 },
        ] {
            let cfg = OneClassSvmConfig {
                approx,
                ..default_cfg()
            };
            let svm = OneClassSvm::fit(&data, &cfg).unwrap();
            let state = svm.export_state();
            let rebuilt = OneClassSvm::from_state(state.clone()).unwrap();
            assert_eq!(rebuilt.export_state(), state, "{approx:?}");
            assert_eq!(rebuilt.rho(), svm.rho());
            assert_eq!(rebuilt.support_vector_count(), svm.support_vector_count());
            for row in queries.rows_iter() {
                let a = svm.decision_function(row).unwrap();
                let b = rebuilt.decision_function(row).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{approx:?}");
            }
        }
    }

    #[test]
    fn corrupt_states_are_rejected() {
        let svm = OneClassSvm::fit(&blob(40, 21), &default_cfg()).unwrap();
        let good = svm.export_state();

        let mut s = good.clone();
        s.nu = 0.0;
        assert!(OneClassSvm::from_state(s).is_err());

        let mut s = good.clone();
        s.rho = f64::NAN;
        assert!(OneClassSvm::from_state(s).is_err());

        let mut s = good.clone();
        s.input_dim = 3; // disagrees with the 2-column support points
        assert!(OneClassSvm::from_state(s).is_err());

        let mut s = good.clone();
        if let SvmDecisionState::Expansion { coeffs, .. } = &mut s.decision {
            coeffs.pop();
        }
        assert!(OneClassSvm::from_state(s).is_err());

        let mut s = good;
        if let SvmDecisionState::Expansion { points, .. } = &mut s.decision {
            points[(0, 0)] = f64::INFINITY;
        }
        assert!(OneClassSvm::from_state(s).is_err());
    }
}
