/// Orientation of a hinge function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HingeDirection {
    /// `max(0, x − knot)`.
    Positive,
    /// `max(0, knot − x)`.
    Negative,
}

/// A single hinge function `max(0, ±(x_feature − knot))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hinge {
    /// Input feature index the hinge reads.
    pub feature: usize,
    /// Knot location `t`.
    pub knot: f64,
    /// Which side of the knot is active.
    pub direction: HingeDirection,
}

impl Hinge {
    /// Evaluates the hinge at an input vector.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds for `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let v = x[self.feature];
        match self.direction {
            HingeDirection::Positive => (v - self.knot).max(0.0),
            HingeDirection::Negative => (self.knot - v).max(0.0),
        }
    }
}

/// A MARS basis function: a product of hinges and plain linear factors
/// (empty product = intercept).
///
/// Linear factors (`x_j` with no knot) give the model non-vanishing slopes
/// outside the training range — without them a pruned model can go
/// completely flat in extrapolation, which matters when silicon PCMs drift
/// beyond the simulated range.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BasisFunction {
    hinges: Vec<Hinge>,
    linear: Vec<usize>,
}

impl BasisFunction {
    /// The intercept basis (constant `1`).
    pub fn intercept() -> Self {
        BasisFunction::default()
    }

    /// Builds a basis function from a set of hinges.
    pub fn from_hinges(hinges: Vec<Hinge>) -> Self {
        BasisFunction {
            hinges,
            linear: Vec::new(),
        }
    }

    /// A pure linear basis `x_feature`.
    pub fn linear(feature: usize) -> Self {
        BasisFunction {
            hinges: Vec::new(),
            linear: vec![feature],
        }
    }

    /// Rebuilds a basis from its factors — the reconstruction path for
    /// persisted models, inverse of [`BasisFunction::hinges`] +
    /// [`BasisFunction::linear_features`].
    pub fn from_parts(hinges: Vec<Hinge>, linear: Vec<usize>) -> Self {
        BasisFunction { hinges, linear }
    }

    /// Extends this basis with one more hinge (the forward-pass child).
    pub fn with_hinge(&self, hinge: Hinge) -> Self {
        let mut out = self.clone();
        out.hinges.push(hinge);
        out
    }

    /// Interaction degree (number of hinge and linear factors).
    pub fn degree(&self) -> usize {
        self.hinges.len() + self.linear.len()
    }

    /// `true` if this is the intercept.
    pub fn is_intercept(&self) -> bool {
        self.hinges.is_empty() && self.linear.is_empty()
    }

    /// The hinges making up the product.
    pub fn hinges(&self) -> &[Hinge] {
        &self.hinges
    }

    /// The linear factors making up the product.
    pub fn linear_features(&self) -> &[usize] {
        &self.linear
    }

    /// `true` if the basis already uses the feature (MARS forbids repeated
    /// features within one product term).
    pub fn uses_feature(&self, feature: usize) -> bool {
        self.hinges.iter().any(|h| h.feature == feature) || self.linear.contains(&feature)
    }

    /// Evaluates the product of factors at an input vector.
    ///
    /// # Panics
    ///
    /// Panics if any factor's feature index is out of bounds for `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let hinge_part: f64 = self.hinges.iter().map(|h| h.eval(x)).product();
        let linear_part: f64 = self.linear.iter().map(|&j| x[j]).product();
        hinge_part * linear_part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinge_directions() {
        let pos = Hinge {
            feature: 0,
            knot: 2.0,
            direction: HingeDirection::Positive,
        };
        assert_eq!(pos.eval(&[3.0]), 1.0);
        assert_eq!(pos.eval(&[1.0]), 0.0);
        let neg = Hinge {
            feature: 0,
            knot: 2.0,
            direction: HingeDirection::Negative,
        };
        assert_eq!(neg.eval(&[3.0]), 0.0);
        assert_eq!(neg.eval(&[1.0]), 1.0);
    }

    #[test]
    fn intercept_evaluates_to_one() {
        let b = BasisFunction::intercept();
        assert_eq!(b.eval(&[1.0, 2.0]), 1.0);
        assert!(b.is_intercept());
        assert_eq!(b.degree(), 0);
    }

    #[test]
    fn product_of_hinges() {
        let b = BasisFunction::from_hinges(vec![
            Hinge {
                feature: 0,
                knot: 0.0,
                direction: HingeDirection::Positive,
            },
            Hinge {
                feature: 1,
                knot: 1.0,
                direction: HingeDirection::Negative,
            },
        ]);
        // (x0 - 0)+ * (1 - x1)+ at (2, 0) = 2 * 1 = 2.
        assert_eq!(b.eval(&[2.0, 0.0]), 2.0);
        // Any zero factor kills the product.
        assert_eq!(b.eval(&[-1.0, 0.0]), 0.0);
        assert_eq!(b.degree(), 2);
    }

    #[test]
    fn with_hinge_is_nondestructive() {
        let parent = BasisFunction::intercept();
        let child = parent.with_hinge(Hinge {
            feature: 0,
            knot: 1.0,
            direction: HingeDirection::Positive,
        });
        assert_eq!(parent.degree(), 0);
        assert_eq!(child.degree(), 1);
        assert!(child.uses_feature(0));
        assert!(!child.uses_feature(1));
    }
}
