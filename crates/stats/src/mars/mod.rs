//! Multivariate Adaptive Regression Splines (Friedman 1991).
//!
//! MARS is the paper's choice of nonlinear regression for mapping PCM
//! measurement vectors to side-channel fingerprint values (§3.2: "MARS were
//! used to train the regression models"). The model is a sum of products of
//! *hinge* functions `max(0, x_j − t)` / `max(0, t − x_j)`:
//!
//! 1. a **forward pass** greedily adds the mirrored hinge pair that most
//!    reduces the residual sum of squares,
//! 2. a **backward pruning pass** removes terms one at a time, keeping the
//!    sub-model with the best generalized cross-validation (GCV) score.
//!
//! # Example
//!
//! ```
//! use sidefp_linalg::Matrix;
//! use sidefp_stats::mars::{Mars, MarsConfig};
//! use sidefp_stats::Regressor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y = |x| has a kink at 0 — exactly what hinges capture.
//! let xs: Vec<Vec<f64>> = (-10..=10).map(|i| vec![i as f64 / 2.0]).collect();
//! let x = Matrix::from_samples(&xs)?;
//! let y: Vec<f64> = xs.iter().map(|v| v[0].abs()).collect();
//! let model = Mars::fit(&x, &y, &MarsConfig::default())?;
//! assert!((model.predict(&[3.0])? - 3.0).abs() < 0.5);
//! assert!((model.predict(&[-3.0])? - 3.0).abs() < 0.5);
//! # Ok(())
//! # }
//! ```

mod basis;
mod model;

pub use basis::{BasisFunction, Hinge, HingeDirection};
pub use model::{Mars, MarsConfig};
