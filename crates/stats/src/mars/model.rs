use sidefp_linalg::{Matrix, QrBuilder};

use crate::mars::{BasisFunction, Hinge, HingeDirection};
use crate::state::{MarsBasisState, MarsState, RegressorState};
use crate::{Regressor, StatsError};

/// Borrow every design column as a slice (trial fits extend this cheap
/// view instead of cloning the columns themselves).
fn borrow_cols(cols: &[Vec<f64>]) -> Vec<&[f64]> {
    cols.iter().map(Vec::as_slice).collect()
}

/// Configuration for [`Mars`] fitting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarsConfig {
    /// Maximum number of basis functions (including the intercept) the
    /// forward pass may build.
    pub max_terms: usize,
    /// Maximum interaction degree (1 = additive model, 2 = pairwise).
    pub max_interaction: usize,
    /// GCV smoothing penalty `d` in Friedman's effective-parameter count
    /// `C(M) = M + d·(M − 1)/2`; Friedman recommends 2–4.
    pub penalty: f64,
    /// Maximum number of candidate knots per (parent, feature) pair;
    /// candidates are taken as quantiles of the active data.
    pub max_knots: usize,
}

impl Default for MarsConfig {
    fn default() -> Self {
        MarsConfig {
            max_terms: 21,
            max_interaction: 2,
            penalty: 3.0,
            max_knots: 20,
        }
    }
}

/// A fitted MARS model: `ŷ(x) = Σ_k c_k · B_k(x)`.
///
/// See the [module docs](crate::mars) for the algorithm outline and an
/// example.
#[derive(Debug, Clone)]
pub struct Mars {
    bases: Vec<BasisFunction>,
    coefficients: Vec<f64>,
    input_dim: usize,
    gcv: f64,
}

impl Mars {
    /// Fits a MARS model to rows of `x` and targets `y`.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if `y.len() != x.nrows()`.
    /// - [`StatsError::InsufficientData`] for fewer than four samples.
    /// - [`StatsError::InvalidParameter`] for a zero `max_terms` /
    ///   `max_interaction` / `max_knots` or negative penalty.
    pub fn fit(x: &Matrix, y: &[f64], config: &MarsConfig) -> Result<Self, StatsError> {
        Self::fit_observed(x, y, config, &sidefp_obs::RunContext::new())
    }

    /// [`Mars::fit`] reporting the fitted model shape as a trace event into
    /// `obs` instead of a throwaway context.
    ///
    /// MARS solves its least-squares subproblems by QR, so there are no
    /// ridge-escalation rescues to count; the observability hook records a
    /// deterministic `model_fit` trace event carrying the surviving basis
    /// count, which pins the pruned model shape in the run's trace log.
    ///
    /// # Errors
    ///
    /// Same as [`Mars::fit`].
    pub fn fit_observed(
        x: &Matrix,
        y: &[f64],
        config: &MarsConfig,
        obs: &sidefp_obs::RunContext,
    ) -> Result<Self, StatsError> {
        let n = x.nrows();
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                got: y.len(),
            });
        }
        if n < 4 {
            return Err(StatsError::InsufficientData { needed: 4, got: n });
        }
        if config.max_terms == 0 {
            return Err(StatsError::InvalidParameter {
                name: "max_terms",
                reason: "must be at least 1".into(),
            });
        }
        if config.max_interaction == 0 {
            return Err(StatsError::InvalidParameter {
                name: "max_interaction",
                reason: "must be at least 1".into(),
            });
        }
        if config.max_knots == 0 {
            return Err(StatsError::InvalidParameter {
                name: "max_knots",
                reason: "must be at least 1".into(),
            });
        }
        if config.penalty < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "penalty",
                reason: format!("must be non-negative, got {}", config.penalty),
            });
        }

        let mut bases = vec![BasisFunction::intercept()];
        let mut design_cols: Vec<Vec<f64>> = vec![vec![1.0; n]];
        // Seed with plain linear terms so the model never extrapolates
        // flat; pruning may still remove them if they carry no signal.
        for feature in 0..x.ncols() {
            let linear = BasisFunction::linear(feature);
            design_cols.push(Self::basis_column(&linear, x));
            bases.push(linear);
        }
        let mut best_rss = Self::fit_rss(&borrow_cols(&design_cols), y)?;

        // The design matrix must stay overdetermined: cap the term count at
        // both the configured budget and (n − 1) columns.
        let term_cap = config.max_terms.min(n.saturating_sub(1));

        // ---- Forward pass ----
        while bases.len() + 1 < term_cap {
            // Enumerate every admissible (parent, feature, knot) triple
            // first, then score the trial fits in parallel: each trial is
            // an independent QR factorization, the dominant cost of the
            // forward pass.
            let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
            for parent_idx in 0..bases.len() {
                if bases[parent_idx].degree() >= config.max_interaction {
                    continue;
                }
                let parent_col = &design_cols[parent_idx];
                for feature in 0..x.ncols() {
                    if bases[parent_idx].uses_feature(feature) {
                        continue;
                    }
                    for knot in Self::candidate_knots(x, parent_col, feature, config.max_knots) {
                        candidates.push((parent_idx, feature, knot));
                    }
                }
            }
            // Every trial shares the columns already in the model, so the
            // shared prefix is factored once per round and each candidate
            // clones it and pushes only its two hinge columns — the
            // incremental QR replays the full factorization's arithmetic
            // exactly, so trial RSS values are bit-identical to refitting
            // from scratch.
            let mut prefix = QrBuilder::new(n, y)?;
            for col in &design_cols {
                prefix.push_column(col)?;
            }
            let scores: Vec<Result<f64, StatsError>> =
                sidefp_parallel::map_indexed(candidates.len(), |c| {
                    let (parent_idx, feature, knot) = candidates[c];
                    let (pos, neg) = Self::hinge_pair(&bases[parent_idx], feature, knot);
                    let pos_col = Self::basis_column(&pos, x);
                    let neg_col = Self::basis_column(&neg, x);
                    let mut qr = prefix.clone();
                    qr.push_column(&pos_col)?;
                    qr.push_column(&neg_col)?;
                    Ok(qr.rss())
                });
            // Scan in enumeration order with strict improvement, so ties
            // resolve to the lowest candidate index — exactly the
            // sequential first-wins behavior at any thread count.
            let mut best: Option<(usize, f64)> = None;
            for (c, score) in scores.into_iter().enumerate() {
                let rss = score?;
                if best.is_none_or(|(_, b)| rss < b) {
                    best = Some((c, rss));
                }
            }
            match best {
                Some((c, rss)) if rss < best_rss * (1.0 - 1e-9) => {
                    let (parent_idx, feature, knot) = candidates[c];
                    let (pos, neg) = Self::hinge_pair(&bases[parent_idx], feature, knot);
                    design_cols.push(Self::basis_column(&pos, x));
                    design_cols.push(Self::basis_column(&neg, x));
                    bases.push(pos);
                    bases.push(neg);
                    best_rss = rss;
                }
                _ => break,
            }
        }

        // ---- Backward pruning by GCV ----
        let mut active: Vec<usize> = (0..bases.len()).collect();
        let (mut best_active, mut best_gcv) = {
            let cols: Vec<&[f64]> = active.iter().map(|&i| design_cols[i].as_slice()).collect();
            let rss = Self::fit_rss(&cols, y)?;
            (
                active.clone(),
                Self::gcv(rss, n, active.len(), config.penalty),
            )
        };
        while active.len() > 1 {
            // Try removing each non-intercept term; keep the best removal.
            // Linear seed terms are protected: within the training range a
            // hinge combination can replicate them (making them look
            // redundant to GCV), but they are what keeps extrapolation
            // slopes alive outside the range.
            let removable: Vec<usize> = active
                .iter()
                .enumerate()
                .filter(|(_, &idx)| {
                    !(bases[idx].is_intercept()
                        || (bases[idx].hinges().is_empty()
                            && !bases[idx].linear_features().is_empty()))
                })
                .map(|(pos, _)| pos)
                .collect();
            // Score every removal trial in parallel (one QR each), then
            // scan in order so ties resolve to the lowest position.
            let scores: Vec<Result<f64, StatsError>> =
                sidefp_parallel::map_indexed(removable.len(), |t| {
                    let pos = removable[t];
                    let cols: Vec<&[f64]> = active
                        .iter()
                        .enumerate()
                        .filter(|(p, _)| *p != pos)
                        .map(|(_, &i)| design_cols[i].as_slice())
                        .collect();
                    let rss = Self::fit_rss(&cols, y)?;
                    Ok(Self::gcv(rss, n, active.len() - 1, config.penalty))
                });
            let mut round_best: Option<(usize, f64)> = None;
            for (t, score) in scores.into_iter().enumerate() {
                let g = score?;
                if round_best.is_none_or(|(_, bg)| g < bg) {
                    round_best = Some((removable[t], g));
                }
            }
            let Some((remove_pos, g)) = round_best else {
                break;
            };
            active.remove(remove_pos);
            if g < best_gcv {
                best_gcv = g;
                best_active = active.clone();
            }
        }

        // ---- Final fit on the pruned basis set ----
        let final_bases: Vec<BasisFunction> =
            best_active.iter().map(|&i| bases[i].clone()).collect();
        let cols: Vec<&[f64]> = best_active
            .iter()
            .map(|&i| design_cols[i].as_slice())
            .collect();
        let coefficients = Self::least_squares(&cols, y)?;

        let model = Mars {
            bases: final_bases,
            coefficients,
            input_dim: x.ncols(),
            gcv: best_gcv,
        };
        obs.trace(sidefp_obs::TraceEvent::ModelFit {
            model: "mars",
            detail: format!("bases={}", model.bases.len()),
        });
        Ok(model)
    }

    /// Column of basis values over all rows of `x`.
    fn basis_column(basis: &BasisFunction, x: &Matrix) -> Vec<f64> {
        x.rows_iter().map(|row| basis.eval(row)).collect()
    }

    /// The positive/negative hinge children of `parent` at a knot.
    fn hinge_pair(
        parent: &BasisFunction,
        feature: usize,
        knot: f64,
    ) -> (BasisFunction, BasisFunction) {
        let pos = parent.with_hinge(Hinge {
            feature,
            knot,
            direction: HingeDirection::Positive,
        });
        let neg = parent.with_hinge(Hinge {
            feature,
            knot,
            direction: HingeDirection::Negative,
        });
        (pos, neg)
    }

    /// Candidate knots: quantiles of the feature over rows where the parent
    /// basis is active (non-zero), excluding the extremes.
    fn candidate_knots(
        x: &Matrix,
        parent_col: &[f64],
        feature: usize,
        max_knots: usize,
    ) -> Vec<f64> {
        let mut values: Vec<f64> = x
            .rows_iter()
            .zip(parent_col)
            .filter(|(_, p)| **p != 0.0)
            .map(|(row, _)| row[feature])
            .collect();
        // NaN features must not panic the knot search: drop them up front
        // (a NaN knot would poison every hinge), then total-order the rest.
        values.retain(|v| !v.is_nan());
        values.sort_by(f64::total_cmp);
        values.dedup();
        if values.len() <= 2 {
            return values;
        }
        // Drop the extremes (a hinge at the min/max is degenerate).
        let interior = &values[1..values.len() - 1];
        if interior.len() <= max_knots {
            return interior.to_vec();
        }
        // Even quantile subsample.
        (0..max_knots)
            .map(|k| {
                let pos = k as f64 / (max_knots - 1) as f64 * (interior.len() - 1) as f64;
                interior[pos.round() as usize]
            })
            .collect()
    }

    /// Least-squares coefficients for the given design columns.
    fn least_squares(cols: &[&[f64]], y: &[f64]) -> Result<Vec<f64>, StatsError> {
        let n = y.len();
        let design = Matrix::from_fn(n, cols.len(), |i, j| cols[j][i]);
        Ok(design.qr()?.solve_least_squares(y)?)
    }

    /// Residual sum of squares of the least-squares fit on `cols`.
    fn fit_rss(cols: &[&[f64]], y: &[f64]) -> Result<f64, StatsError> {
        let n = y.len();
        let design = Matrix::from_fn(n, cols.len(), |i, j| cols[j][i]);
        Ok(design.qr()?.residual_sum_of_squares(y)?)
    }

    /// Friedman's generalized cross-validation score.
    fn gcv(rss: f64, n: usize, terms: usize, penalty: f64) -> f64 {
        let c = terms as f64 + penalty * (terms.saturating_sub(1)) as f64 / 2.0;
        let denom = 1.0 - c / n as f64;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            rss / n as f64 / (denom * denom)
        }
    }

    /// Basis functions of the fitted model (intercept first).
    pub fn bases(&self) -> &[BasisFunction] {
        &self.bases
    }

    /// Coefficients, aligned with [`Mars::bases`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// GCV score of the selected model (lower is better).
    pub fn gcv_score(&self) -> f64 {
        self.gcv
    }

    /// Exports the fitted model as a plain-data [`MarsState`] snapshot;
    /// [`Mars::from_state`] reconstructs a bit-identical predictor.
    pub fn export_state(&self) -> MarsState {
        MarsState {
            bases: self
                .bases
                .iter()
                .map(|b| MarsBasisState {
                    hinges: b.hinges().to_vec(),
                    linear: b.linear_features().to_vec(),
                })
                .collect(),
            coefficients: self.coefficients.clone(),
            input_dim: self.input_dim,
            gcv: self.gcv,
        }
    }

    /// Reconstructs a fitted model from an exported [`MarsState`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when the state is
    /// internally inconsistent: basis/coefficient counts disagree, a
    /// feature index is out of range, or a value is non-finite.
    pub fn from_state(state: MarsState) -> Result<Self, StatsError> {
        if state.input_dim == 0 {
            return Err(StatsError::InvalidParameter {
                name: "mars.input_dim",
                reason: "must be positive".into(),
            });
        }
        if state.bases.is_empty() || state.bases.len() != state.coefficients.len() {
            return Err(StatsError::InvalidParameter {
                name: "mars.bases",
                reason: format!(
                    "{} bases vs {} coefficients",
                    state.bases.len(),
                    state.coefficients.len()
                ),
            });
        }
        crate::state::require_finite("mars.coefficients", &state.coefficients)?;
        if !(state.gcv.is_finite() && state.gcv >= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "mars.gcv",
                reason: format!("must be finite and non-negative, got {}", state.gcv),
            });
        }
        let mut bases = Vec::with_capacity(state.bases.len());
        for b in state.bases {
            for h in &b.hinges {
                if h.feature >= state.input_dim || !h.knot.is_finite() {
                    return Err(StatsError::InvalidParameter {
                        name: "mars.hinges",
                        reason: format!(
                            "hinge on feature {} with knot {} is invalid for dim {}",
                            h.feature, h.knot, state.input_dim
                        ),
                    });
                }
            }
            if let Some(&j) = b.linear.iter().find(|&&j| j >= state.input_dim) {
                return Err(StatsError::InvalidParameter {
                    name: "mars.linear",
                    reason: format!(
                        "linear feature {j} out of range for dim {}",
                        state.input_dim
                    ),
                });
            }
            bases.push(BasisFunction::from_parts(b.hinges, b.linear));
        }
        Ok(Mars {
            bases,
            coefficients: state.coefficients,
            input_dim: state.input_dim,
            gcv: state.gcv,
        })
    }
}

impl Regressor for Mars {
    fn predict(&self, x: &[f64]) -> Result<f64, StatsError> {
        if x.len() != self.input_dim {
            return Err(StatsError::DimensionMismatch {
                expected: self.input_dim,
                got: x.len(),
            });
        }
        Ok(self
            .bases
            .iter()
            .zip(&self.coefficients)
            .map(|(b, c)| c * b.eval(x))
            .sum())
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn export_state(&self) -> Option<RegressorState> {
        Some(RegressorState::Mars(Mars::export_state(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    fn grid_1d(lo: f64, hi: f64, n: usize) -> Matrix {
        let step = (hi - lo) / (n - 1) as f64;
        Matrix::from_fn(n, 1, |i, _| lo + i as f64 * step)
    }

    #[test]
    fn fits_linear_function_exactly() {
        let x = grid_1d(-5.0, 5.0, 30);
        let y: Vec<f64> = x.col(0).iter().map(|v| 3.0 * v + 1.0).collect();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        for t in [-4.0, 0.0, 2.5] {
            assert!((m.predict(&[t]).unwrap() - (3.0 * t + 1.0)).abs() < 0.1);
        }
    }

    #[test]
    fn fits_piecewise_kink() {
        let x = grid_1d(-5.0, 5.0, 41);
        let y: Vec<f64> = x.col(0).iter().map(|v| v.abs()).collect();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        assert!((m.predict(&[2.0]).unwrap() - 2.0).abs() < 0.2);
        assert!((m.predict(&[-2.0]).unwrap() - 2.0).abs() < 0.2);
        // The greedy knot subsample may not land exactly on the kink;
        // allow a coarser error right at x = 0.
        assert!(m.predict(&[0.0]).unwrap().abs() < 0.6);
        let preds = m.predict_rows(&x).unwrap();
        let r2 = descriptive::r_squared(&y, &preds).unwrap();
        assert!(r2 > 0.97, "R² = {r2}");
    }

    #[test]
    fn fits_smooth_nonlinearity_well() {
        let x = grid_1d(0.0, 3.0, 60);
        let y: Vec<f64> = x.col(0).iter().map(|v| (v * 2.0).sin() + v).collect();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        let preds = m.predict_rows(&x).unwrap();
        let r2 = descriptive::r_squared(&y, &preds).unwrap();
        assert!(r2 > 0.95, "R² = {r2}");
    }

    #[test]
    fn captures_interaction_terms() {
        // y = x0 * x1 on a grid requires degree-2 products of hinges.
        let mut rows = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                rows.push(vec![i as f64 / 2.0, j as f64 / 2.0]);
            }
        }
        let x = Matrix::from_samples(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        let preds = m.predict_rows(&x).unwrap();
        let r2 = descriptive::r_squared(&y, &preds).unwrap();
        assert!(r2 > 0.95, "R² = {r2}");
        // Check an interaction basis was actually selected.
        assert!(m.bases().iter().any(|b| b.degree() == 2));
    }

    #[test]
    fn additive_config_disables_interactions() {
        let mut rows = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push(vec![i as f64, j as f64]);
            }
        }
        let x = Matrix::from_samples(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let cfg = MarsConfig {
            max_interaction: 1,
            ..Default::default()
        };
        let m = Mars::fit(&x, &y, &cfg).unwrap();
        assert!(m.bases().iter().all(|b| b.degree() <= 1));
    }

    #[test]
    fn pruning_keeps_model_small_for_constant_target() {
        let x = grid_1d(0.0, 1.0, 20);
        let y = vec![5.0; 20];
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        // A constant target needs only the intercept plus the protected
        // linear seed term (whose coefficient the fit drives to ~0).
        assert!(m.bases().len() <= 3, "kept {} bases", m.bases().len());
        assert!((m.predict(&[0.5]).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fit_identical_at_any_thread_count() {
        let x = grid_1d(-3.0, 3.0, 50);
        let y: Vec<f64> = x.col(0).iter().map(|v| v.abs() + 0.3 * v).collect();
        let reference =
            sidefp_parallel::with_threads(1, || Mars::fit(&x, &y, &MarsConfig::default()).unwrap());
        for threads in [2, 8] {
            let m = sidefp_parallel::with_threads(threads, || {
                Mars::fit(&x, &y, &MarsConfig::default()).unwrap()
            });
            assert_eq!(
                m.coefficients(),
                reference.coefficients(),
                "threads={threads}"
            );
            assert_eq!(m.bases().len(), reference.bases().len());
        }
    }

    #[test]
    fn gcv_score_is_finite_and_positive() {
        let x = grid_1d(0.0, 1.0, 20);
        let y: Vec<f64> = x.col(0).iter().map(|v| v * v).collect();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        assert!(m.gcv_score().is_finite());
        assert!(m.gcv_score() >= 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let x = grid_1d(0.0, 1.0, 10);
        let y = vec![0.0; 9];
        assert!(Mars::fit(&x, &y, &MarsConfig::default()).is_err());
        let y3 = vec![0.0; 3];
        assert!(Mars::fit(&grid_1d(0.0, 1.0, 3), &y3, &MarsConfig::default()).is_err());
        let y10 = vec![0.0; 10];
        let bad = MarsConfig {
            max_terms: 0,
            ..Default::default()
        };
        assert!(Mars::fit(&x, &y10, &bad).is_err());
        let bad = MarsConfig {
            max_interaction: 0,
            ..Default::default()
        };
        assert!(Mars::fit(&x, &y10, &bad).is_err());
        let bad = MarsConfig {
            penalty: -1.0,
            ..Default::default()
        };
        assert!(Mars::fit(&x, &y10, &bad).is_err());
        let bad = MarsConfig {
            max_knots: 0,
            ..Default::default()
        };
        assert!(Mars::fit(&x, &y10, &bad).is_err());
    }

    #[test]
    fn predict_dimension_checked() {
        let x = grid_1d(0.0, 1.0, 10);
        let y: Vec<f64> = x.col(0).to_vec();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        assert!(m.predict(&[1.0, 2.0]).is_err());
        assert_eq!(m.input_dim(), 1);
    }

    #[test]
    fn intercept_is_always_first_basis() {
        let x = grid_1d(0.0, 1.0, 15);
        let y: Vec<f64> = x.col(0).iter().map(|v| 2.0 * v).collect();
        let m = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
        assert!(m.bases()[0].is_intercept());
        assert_eq!(m.bases().len(), m.coefficients().len());
    }

    #[test]
    fn candidate_knots_skip_nan_features_without_panic() {
        // Regression: the knot sort used partial_cmp().expect("finite
        // data") and panicked when a NaN slipped past the sanitizer. NaNs
        // are now dropped before sorting, so the knot list stays finite.
        let x = Matrix::from_fn(6, 1, |i, _| if i == 2 { f64::NAN } else { i as f64 });
        let parent = vec![1.0; 6];
        let knots = Mars::candidate_knots(&x, &parent, 0, 10);
        assert!(!knots.is_empty());
        assert!(knots.iter().all(|k| k.is_finite()), "{knots:?}");

        // The full fit on NaN-bearing data must not panic either; a typed
        // error (from the downstream least-squares) is acceptable.
        let y: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let _ = Mars::fit(&x, &y, &MarsConfig::default());
    }
}
