//! Statistical learning substrate for golden chip-free side-channel
//! fingerprinting.
//!
//! This crate implements, from scratch, every statistical technique the
//! DAC'14 golden chip-free Trojan detection flow relies on:
//!
//! - [`descriptive`]: means, variances, quantiles, correlation,
//! - [`StandardScaler`]: z-score feature standardization,
//! - [`MultivariateNormal`]: correlated Gaussian sampling (Box–Muller +
//!   Cholesky),
//! - [`Pca`]: principal component analysis (Fig. 4 projections),
//! - [`kde`]: fixed and adaptive Epanechnikov kernel density estimation with
//!   synthetic-sample generation (the paper's tail-modeling step, Eq. 5–9),
//! - [`KernelMeanMatching`]: covariate-shift correction (Eq. 3–4),
//! - [`mars`]: multivariate adaptive regression splines (the paper's choice
//!   of nonlinear regression from PCMs to fingerprints),
//! - [`OneClassSvm`]: ν-one-class SVM with an SMO solver (the paper's
//!   trusted-boundary learner),
//! - [`qp`]: the quadratic-program solvers backing KMM and the SVM,
//! - [`roc`]: ROC/AUC analysis over boundary decision values,
//! - [`mmd_test`]: permutation two-sample testing (does S5 match silicon?),
//! - [`bootstrap`]: confidence intervals for detection rates,
//! - [`ridge::PolynomialRidge`] / [`knn::KnnRegressor`]: regressor
//!   baselines for ablation studies.
//!
//! # Example: learn a trusted region and score points
//!
//! ```
//! use sidefp_linalg::Matrix;
//! use sidefp_stats::{Kernel, OneClassSvm, OneClassSvmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tight cluster near the origin.
//! let train = Matrix::from_rows(&[
//!     &[0.0, 0.1], &[0.1, -0.1], &[-0.1, 0.0], &[0.05, 0.05],
//!     &[-0.05, 0.1], &[0.1, 0.1], &[0.0, -0.1], &[-0.1, -0.05],
//! ])?;
//! let svm = OneClassSvm::fit(&train, &OneClassSvmConfig {
//!     nu: 0.1,
//!     kernel: Kernel::Rbf { gamma: 1.0 },
//!     ..Default::default()
//! })?;
//! assert!(svm.is_inlier(&[0.0, 0.0])?);
//! assert!(!svm.is_inlier(&[5.0, 5.0])?);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod approx;
pub mod bootstrap;
pub mod descriptive;
pub mod dist;
mod error;
mod gram;
pub mod kde;
mod kernel;
mod kernel_cache;
mod kmm;
pub mod knn;
pub mod mars;
mod metrics;
pub mod mmd_test;
mod mvn;
mod ocsvm;
mod pca;
pub mod qp;
mod regression;
pub mod ridge;
pub mod roc;
mod scaler;
pub mod state;

pub use approx::{KernelApprox, KernelFeatureMap, LowRankQ};
pub use dist::{Dist, JointNormal};
pub use error::StatsError;
// Re-export the per-run observability handle the `*_observed` solver entry
// points take, so downstream crates need no direct sidefp-obs dependency.
pub use gram::{pairwise_squared_distances, GramMatrix};
pub use kernel::Kernel;
pub use kernel_cache::KernelRowCache;
pub use kmm::{KernelMeanMatching, KmmConfig};
pub use metrics::{ConfusionCounts, DetectionLabel};
pub use mvn::MultivariateNormal;
pub use ocsvm::{OneClassSvm, OneClassSvmConfig};
pub use pca::Pca;
pub use regression::Regressor;
pub use scaler::StandardScaler;
pub use sidefp_obs::{RunContext, SolverHealth};
pub use state::{
    regressor_from_state, KdeState, KnnState, MarsBasisState, MarsState, RegressorState,
    RidgeState, ScalerState, SvmDecisionState, SvmState,
};

// Re-export the linalg error so `?` conversions read naturally downstream.
pub use sidefp_linalg::LinalgError;

/// Rejects matrices containing NaN/∞ entries with a typed error naming the
/// first offending coordinate (crate-wide finite-input screen).
pub(crate) fn check_finite_matrix(
    name: &'static str,
    m: &sidefp_linalg::Matrix,
) -> Result<(), StatsError> {
    if let Some(pos) = m.as_slice().iter().position(|v| !v.is_finite()) {
        let (row, col) = (pos / m.ncols().max(1), pos % m.ncols().max(1));
        return Err(StatsError::InvalidParameter {
            name,
            reason: format!(
                "non-finite entry {} at ({row}, {col}); sanitize measurements first",
                m.as_slice()[pos]
            ),
        });
    }
    Ok(())
}

/// Slice counterpart of [`check_finite_matrix`].
pub(crate) fn check_finite_slice(name: &'static str, x: &[f64]) -> Result<(), StatsError> {
    if let Some(pos) = x.iter().position(|v| !v.is_finite()) {
        return Err(StatsError::InvalidParameter {
            name,
            reason: format!("non-finite entry {} at index {pos}", x[pos]),
        });
    }
    Ok(())
}
