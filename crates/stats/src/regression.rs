use sidefp_linalg::Matrix;

use crate::state::RegressorState;
use crate::StatsError;

/// A fitted single-output regression model `g : ℝᵈ → ℝ`.
///
/// The golden-free flow trains one regressor per side-channel fingerprint
/// coordinate (paper §2.1: `g_j : m_p ↦ m_j`). Implementations in this
/// workspace: [`mars::Mars`](crate::mars::Mars) (the paper's choice),
/// [`ridge::PolynomialRidge`](crate::ridge::PolynomialRidge) and
/// [`knn::KnnRegressor`](crate::knn::KnnRegressor) (ablation baselines).
///
/// The trait is object-safe so that pipelines can hold `Box<dyn Regressor>`
/// and swap models per configuration.
pub trait Regressor: std::fmt::Debug + Send + Sync {
    /// Predicts the output for a single input vector.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `x` does not match the
    /// fitted input dimension.
    fn predict(&self, x: &[f64]) -> Result<f64, StatsError>;

    /// Input dimension the model was fitted on.
    fn input_dim(&self) -> usize;

    /// Predicts outputs for every row of `x`.
    ///
    /// # Errors
    ///
    /// Propagates [`Regressor::predict`] errors.
    fn predict_rows(&self, x: &Matrix) -> Result<Vec<f64>, StatsError> {
        x.rows_iter().map(|row| self.predict(row)).collect()
    }

    /// Exports the fitted parameters as a persistable
    /// [`RegressorState`](crate::state::RegressorState), or `None` for
    /// implementations outside the workspace's persistable set (the
    /// default). [`crate::state::regressor_from_state`] is the inverse.
    fn export_state(&self) -> Option<RegressorState> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal stub: predicts the sum of inputs.
    #[derive(Debug)]
    struct SumModel {
        dim: usize,
    }

    impl Regressor for SumModel {
        fn predict(&self, x: &[f64]) -> Result<f64, StatsError> {
            if x.len() != self.dim {
                return Err(StatsError::DimensionMismatch {
                    expected: self.dim,
                    got: x.len(),
                });
            }
            Ok(x.iter().sum())
        }

        fn input_dim(&self) -> usize {
            self.dim
        }
    }

    #[test]
    fn default_predict_rows_maps_all_rows() {
        let m = SumModel { dim: 2 };
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.predict_rows(&x).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn trait_is_object_safe() {
        let m: Box<dyn Regressor> = Box::new(SumModel { dim: 1 });
        assert_eq!(m.predict(&[5.0]).unwrap(), 5.0);
        assert_eq!(m.input_dim(), 1);
        assert!(m.predict(&[1.0, 2.0]).is_err());
    }
}
