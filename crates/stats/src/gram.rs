//! Shared Gram-matrix engine for the kernel methods.
//!
//! KMM, the one-class SVM and the MMD permutation test all start from the
//! same object: a pairwise kernel matrix over data rows. [`GramMatrix`]
//! computes it once — in parallel, exploiting symmetry — and exposes the
//! summation helpers those consumers need, so none of them carries its own
//! pairwise-kernel loop.
//!
//! Parallel layout: the upper triangle is filled by contiguous row chunks
//! whose boundaries equalize the *triangle* work `Σ (n − i)`, not the row
//! count — early rows are much heavier than late ones. Each worker writes
//! only its own rows of the backing buffer (disjoint `split_at_mut`
//! slices, no locks); the lower triangle is mirrored afterwards with plain
//! copies. Every element is an independent kernel evaluation, so the
//! result is bit-identical at any thread count.

use sidefp_linalg::Matrix;

use crate::{Kernel, StatsError};

/// A precomputed symmetric kernel matrix `K[i][j] = k(x_i, x_j)` over the
/// rows of one dataset, tagged with the kernel that produced it.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::{GramMatrix, Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 2.0]])?;
/// let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.5 }, &data);
/// assert_eq!(gram.len(), 3);
/// assert_eq!(gram.matrix()[(0, 0)], 1.0);
/// assert_eq!(gram.matrix()[(0, 1)], gram.matrix()[(1, 0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GramMatrix {
    kernel: Kernel,
    values: Matrix,
}

impl GramMatrix {
    /// Computes the symmetric Gram matrix of `data`'s rows in parallel.
    pub fn symmetric(kernel: Kernel, data: &Matrix) -> GramMatrix {
        let n = data.nrows();
        let ncols = n;
        let mut values = Matrix::zeros(n, n);
        if n > 0 {
            let row_blocks = triangle_blocks(n, sidefp_parallel::current_threads());
            let cuts: Vec<usize> = row_blocks.iter().skip(1).map(|r| r.start * ncols).collect();
            sidefp_parallel::for_each_split_mut(values.as_mut_slice(), &cuts, |block, slice| {
                let rows = row_blocks[block].clone();
                for (local, i) in rows.clone().enumerate() {
                    let xi = data.row(i);
                    let out = &mut slice[local * ncols..(local + 1) * ncols];
                    for (j, v) in out.iter_mut().enumerate().skip(i) {
                        *v = kernel.eval(xi, data.row(j));
                    }
                }
            });
            // Mirror the strict upper triangle; cheap copies, no kernel
            // evaluations.
            for i in 1..n {
                for j in 0..i {
                    values[(i, j)] = values[(j, i)];
                }
            }
        }
        GramMatrix { kernel, values }
    }

    /// Computes the rectangular cross-Gram `K[i][j] = k(a_i, b_j)` in
    /// parallel row chunks.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the column counts of
    /// `a` and `b` differ.
    pub fn cross(kernel: Kernel, a: &Matrix, b: &Matrix) -> Result<Matrix, StatsError> {
        if a.ncols() != b.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: a.ncols(),
                got: b.ncols(),
            });
        }
        let (na, nb) = (a.nrows(), b.nrows());
        let mut values = Matrix::zeros(na, nb);
        if na == 0 || nb == 0 {
            return Ok(values);
        }
        let row_blocks = sidefp_parallel::split_even(na, sidefp_parallel::current_threads());
        let cuts: Vec<usize> = row_blocks.iter().skip(1).map(|r| r.start * nb).collect();
        sidefp_parallel::for_each_split_mut(values.as_mut_slice(), &cuts, |block, slice| {
            let rows = row_blocks[block].clone();
            for (local, i) in rows.clone().enumerate() {
                let xi = a.row(i);
                let out = &mut slice[local * nb..(local + 1) * nb];
                for (o, j) in out.iter_mut().zip(0..nb) {
                    *o = kernel.eval(xi, b.row(j));
                }
            }
        });
        Ok(values)
    }

    /// The kernel this matrix was computed with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The symmetric kernel matrix itself.
    pub fn matrix(&self) -> &Matrix {
        &self.values
    }

    /// Consumes the wrapper, returning the kernel matrix.
    pub fn into_matrix(self) -> Matrix {
        self.values
    }

    /// Number of data rows (the matrix is `len × len`).
    pub fn len(&self) -> usize {
        self.values.nrows()
    }

    /// `true` for a 0×0 Gram matrix.
    pub fn is_empty(&self) -> bool {
        self.values.nrows() == 0
    }

    /// Sum of `K[i][j]` over `i ∈ rows`, `j ∈ cols` — the building block
    /// of every MMD-style statistic.
    pub fn block_sum(&self, rows: &[usize], cols: &[usize]) -> f64 {
        sidefp_parallel::reduce_sum(rows.len(), |r| {
            let row = self.values.row(rows[r]);
            cols.iter().map(|&c| row[c]).sum()
        })
    }

    /// Sum of every entry of the matrix.
    pub fn total_sum(&self) -> f64 {
        let n = self.len();
        sidefp_parallel::reduce_sum(n, |i| self.values.row(i).iter().sum())
    }

    /// The quadratic form `wᵀ K w` (the weighted-MMD training term).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.len()`.
    pub fn weighted_quadratic(&self, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.len(), "weight vector length mismatch");
        sidefp_parallel::reduce_sum(self.len(), |i| {
            let row = self.values.row(i);
            w[i] * row.iter().zip(w).map(|(k, wj)| k * wj).sum::<f64>()
        })
    }

    /// Per-row sums of the matrix.
    pub fn row_sums(&self) -> Vec<f64> {
        sidefp_parallel::map_indexed(self.len(), |i| self.values.row(i).iter().sum())
    }
}

/// Splits `0..n` rows into at most `parts` contiguous blocks whose
/// upper-triangle workloads `Σ (n − i)` are near-equal: the parallel
/// symmetric fill is balanced even though early rows touch many more
/// pairs than late ones.
fn triangle_blocks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    if parts == 1 {
        return std::iter::once(0..n).collect();
    }
    let total: f64 = (n * (n + 1)) as f64 / 2.0;
    let target = total / parts as f64;
    let mut blocks = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0.0;
    for i in 0..n {
        acc += (n - i) as f64;
        // Close the block once its workload reaches the target, always
        // leaving at least one row per remaining block.
        let remaining_blocks = parts - blocks.len();
        let remaining_rows = n - i - 1;
        if (acc >= target && remaining_blocks > 1 && remaining_rows >= remaining_blocks - 1)
            || i + 1 == n
        {
            blocks.push(start..i + 1);
            start = i + 1;
            acc = 0.0;
            if blocks.len() == parts {
                break;
            }
        }
    }
    if start < n {
        // Tail rows fold into the last block.
        let last = blocks.pop().expect("at least one block exists");
        blocks.push(last.start..n);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidefp_parallel::with_threads;

    fn sample(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| ((i * 13 + j * 5) % 17) as f64 * 0.17 - 1.0)
    }

    #[test]
    fn symmetric_matches_direct_evaluation() {
        let data = sample(23, 4);
        let kernel = Kernel::Rbf { gamma: 0.7 };
        let gram = GramMatrix::symmetric(kernel, &data);
        for i in 0..23 {
            for j in 0..23 {
                let expected = kernel.eval(data.row(i), data.row(j));
                assert_eq!(gram.matrix()[(i, j)], expected, "({i}, {j})");
            }
        }
        assert_eq!(gram.kernel(), kernel);
        assert_eq!(gram.len(), 23);
        assert!(!gram.is_empty());
    }

    #[test]
    fn symmetric_identical_at_any_thread_count() {
        let data = sample(41, 3);
        let kernel = Kernel::Rbf { gamma: 1.3 };
        let reference = with_threads(1, || GramMatrix::symmetric(kernel, &data));
        for threads in [2, 3, 8] {
            let got = with_threads(threads, || GramMatrix::symmetric(kernel, &data));
            assert_eq!(
                got.matrix().as_slice(),
                reference.matrix().as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cross_matches_direct_evaluation() {
        let a = sample(7, 3);
        let b = sample(11, 3);
        let kernel = Kernel::Linear;
        let cross = GramMatrix::cross(kernel, &a, &b).unwrap();
        assert_eq!(cross.shape(), (7, 11));
        for i in 0..7 {
            for j in 0..11 {
                assert_eq!(cross[(i, j)], kernel.eval(a.row(i), b.row(j)));
            }
        }
    }

    #[test]
    fn cross_rejects_column_mismatch() {
        let a = sample(4, 3);
        let b = sample(4, 2);
        assert!(matches!(
            GramMatrix::cross(Kernel::Linear, &a, &b),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn block_and_total_sums_agree() {
        let data = sample(15, 2);
        let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.4 }, &data);
        let all: Vec<usize> = (0..15).collect();
        let brute: f64 = (0..15)
            .flat_map(|i| (0..15).map(move |j| (i, j)))
            .map(|(i, j)| gram.matrix()[(i, j)])
            .sum();
        assert!((gram.block_sum(&all, &all) - brute).abs() < 1e-12);
        assert!((gram.total_sum() - brute).abs() < 1e-12);
        let left = &all[..7];
        let right = &all[7..];
        let brute_lr: f64 = left
            .iter()
            .flat_map(|&i| right.iter().map(move |&j| (i, j)))
            .map(|(i, j)| gram.matrix()[(i, j)])
            .sum();
        assert!((gram.block_sum(left, right) - brute_lr).abs() < 1e-12);
    }

    #[test]
    fn weighted_quadratic_matches_brute_force() {
        let data = sample(9, 2);
        let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.8 }, &data);
        let w: Vec<f64> = (0..9).map(|i| 0.3 + 0.1 * i as f64).collect();
        let brute: f64 = (0..9)
            .flat_map(|i| (0..9).map(move |j| (i, j)))
            .map(|(i, j)| w[i] * w[j] * gram.matrix()[(i, j)])
            .sum();
        assert!((gram.weighted_quadratic(&w) - brute).abs() < 1e-12);
    }

    #[test]
    fn row_sums_match_matrix_rows() {
        let data = sample(8, 2);
        let gram = GramMatrix::symmetric(Kernel::Linear, &data);
        let sums = gram.row_sums();
        for (i, s) in sums.iter().enumerate() {
            let expected: f64 = gram.matrix().row(i).iter().sum();
            assert_eq!(*s, expected);
        }
    }

    #[test]
    fn triangle_blocks_cover_and_balance() {
        for n in [1usize, 2, 5, 16, 101] {
            for parts in [1usize, 2, 3, 8] {
                let blocks = triangle_blocks(n, parts);
                let mut expect = 0;
                for b in &blocks {
                    assert_eq!(b.start, expect);
                    assert!(!b.is_empty());
                    expect = b.end;
                }
                assert_eq!(expect, n);
                assert!(blocks.len() <= parts.min(n));
            }
        }
        // Balance sanity on a big triangle: no block should carry more
        // than ~2x the ideal share of pair evaluations.
        let n = 400;
        let blocks = triangle_blocks(n, 8);
        let total = (n * (n + 1)) / 2;
        for b in &blocks {
            let work: usize = b.clone().map(|i| n - i).sum();
            assert!(
                work <= total / 4,
                "block {b:?} carries {work} of {total} evaluations"
            );
        }
    }

    #[test]
    fn empty_gram_is_empty() {
        let gram = GramMatrix::symmetric(Kernel::Linear, &Matrix::zeros(0, 0));
        assert!(gram.is_empty());
        assert_eq!(gram.total_sum(), 0.0);
        assert_eq!(gram.clone().into_matrix().shape(), (0, 0));
    }
}
