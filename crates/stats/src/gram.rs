//! Shared Gram-matrix engine for the kernel methods.
//!
//! KMM, the one-class SVM and the MMD permutation test all start from the
//! same object: a pairwise kernel matrix over data rows. [`GramMatrix`]
//! computes it once and exposes the summation helpers those consumers
//! need, so none of them carries its own pairwise-kernel loop.
//!
//! Construction runs through the packed-panel GEMM with **fused
//! epilogues** ([`sidefp_linalg::gemm`]): the micro-kernel forms the
//! inner products `X·Yᵀ`, and while each output stripe is still in cache
//! the epilogue applies the identity `‖x − y‖² = ‖x‖² + ‖y‖² − 2⟨x, y⟩`
//! and the kernel's scalar map (`exp`, `powi`) in the same pass — there
//! is no second full-matrix sweep over a materialized product. Symmetric
//! Grams use the `A·Aᵀ` entry point, which only forms the upper triangle
//! (the dot-product count is halved) and mirrors the lower one with plain
//! copies afterwards. Squared distances are clamped at zero: the identity
//! can go negative by a rounding epsilon where the direct difference
//! cannot, and row norms are computed with the same ascending fold as the
//! micro-kernel's own diagonal dot, so `‖x − x‖²` cancels to exactly zero
//! (RBF Gram diagonals are exactly 1).
//!
//! Parallel layout and determinism are inherited from the GEMM driver:
//! row stripes form a precomputed tile queue claimed via an atomic
//! counter, and each stripe is written only to its own pre-split output
//! slot, so the result is bit-identical at any thread count.

use sidefp_linalg::gemm::{self, Epilogue};
use sidefp_linalg::{vecops, Matrix};

use crate::{Kernel, StatsError};

/// A precomputed symmetric kernel matrix `K[i][j] = k(x_i, x_j)` over the
/// rows of one dataset, tagged with the kernel that produced it.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::{GramMatrix, Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 2.0]])?;
/// let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.5 }, &data);
/// assert_eq!(gram.len(), 3);
/// assert_eq!(gram.matrix()[(0, 0)], 1.0);
/// assert_eq!(gram.matrix()[(0, 1)], gram.matrix()[(1, 0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GramMatrix {
    kernel: Kernel,
    values: Matrix,
}

impl GramMatrix {
    /// Computes the symmetric Gram matrix of `data`'s rows in GEMM form.
    pub fn symmetric(kernel: Kernel, data: &Matrix) -> GramMatrix {
        let n = data.nrows();
        if n == 0 {
            return GramMatrix {
                kernel,
                values: Matrix::zeros(0, 0),
            };
        }
        let mut values = Matrix::zeros(n, n);
        match kernel {
            Kernel::Rbf { gamma } => {
                let norms = row_norms(data);
                gemm::syrk_fused(
                    data,
                    &Epilogue::Rbf {
                        gamma,
                        a_norms: &norms,
                        b_norms: &norms,
                    },
                    &mut values,
                );
            }
            // The linear Gram *is* the product matrix.
            Kernel::Linear => gemm::syrk_fused(data, &Epilogue::None, &mut values),
            Kernel::Polynomial { degree, coef0 } => {
                gemm::syrk_fused(data, &Epilogue::Polynomial { degree, coef0 }, &mut values);
            }
        }
        mirror_lower_triangle(&mut values);
        GramMatrix { kernel, values }
    }

    /// Builds an RBF Gram matrix from an already-computed matrix of
    /// pairwise squared distances (see [`pairwise_squared_distances`]).
    ///
    /// `exp(-γ·d²)` is applied element-wise, so the result is
    /// value-identical to [`GramMatrix::symmetric`] on the data that
    /// produced `d2` — both run the same GEMM-form distance expression.
    /// This lets the MMD test derive the median-heuristic bandwidth and
    /// the Gram from one distance pass instead of two.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InvalidParameter`] for kernels that are not a pure
    ///   function of distance (linear, polynomial).
    /// - [`StatsError::DimensionMismatch`] if `d2` is not square.
    pub fn from_squared_distances(kernel: Kernel, d2: Matrix) -> Result<GramMatrix, StatsError> {
        let Kernel::Rbf { gamma } = kernel else {
            return Err(StatsError::InvalidParameter {
                name: "kernel",
                reason: format!("{kernel:?} is not a function of pairwise distance"),
            });
        };
        if d2.nrows() != d2.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: d2.nrows(),
                got: d2.ncols(),
            });
        }
        let mut values = d2;
        map_rows(&mut values, |_, _, v| vecops::exp(-gamma * v));
        Ok(GramMatrix { kernel, values })
    }

    /// Computes the rectangular cross-Gram `K[i][j] = k(a_i, b_j)` in GEMM
    /// form with parallel row chunks.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the column counts of
    /// `a` and `b` differ.
    pub fn cross(kernel: Kernel, a: &Matrix, b: &Matrix) -> Result<Matrix, StatsError> {
        if a.ncols() != b.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: a.ncols(),
                got: b.ncols(),
            });
        }
        let (na, nb) = (a.nrows(), b.nrows());
        if na == 0 || nb == 0 {
            return Ok(Matrix::zeros(na, nb));
        }
        let mut values = Matrix::zeros(na, nb);
        match kernel {
            Kernel::Rbf { gamma } => {
                let a_norms = row_norms(a);
                let b_norms = row_norms(b);
                gemm::gemm_nt_fused(
                    a,
                    b,
                    &Epilogue::Rbf {
                        gamma,
                        a_norms: &a_norms,
                        b_norms: &b_norms,
                    },
                    &mut values,
                );
            }
            Kernel::Linear => gemm::gemm_nt_fused(a, b, &Epilogue::None, &mut values),
            Kernel::Polynomial { degree, coef0 } => {
                gemm::gemm_nt_fused(a, b, &Epilogue::Polynomial { degree, coef0 }, &mut values);
            }
        }
        Ok(values)
    }

    /// The kernel this matrix was computed with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The symmetric kernel matrix itself.
    pub fn matrix(&self) -> &Matrix {
        &self.values
    }

    /// Consumes the wrapper, returning the kernel matrix.
    pub fn into_matrix(self) -> Matrix {
        self.values
    }

    /// Number of data rows (the matrix is `len × len`).
    pub fn len(&self) -> usize {
        self.values.nrows()
    }

    /// `true` for a 0×0 Gram matrix.
    pub fn is_empty(&self) -> bool {
        self.values.nrows() == 0
    }

    /// Sum of `K[i][j]` over `i ∈ rows`, `j ∈ cols` — the building block
    /// of every MMD-style statistic.
    pub fn block_sum(&self, rows: &[usize], cols: &[usize]) -> f64 {
        sidefp_parallel::reduce_sum(rows.len(), |r| {
            let row = self.values.row(rows[r]);
            cols.iter().map(|&c| row[c]).sum()
        })
    }

    /// Sum of every entry of the matrix.
    pub fn total_sum(&self) -> f64 {
        let n = self.len();
        sidefp_parallel::reduce_sum(n, |i| self.values.row(i).iter().sum())
    }

    /// The quadratic form `wᵀ K w` (the weighted-MMD training term).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.len()`.
    pub fn weighted_quadratic(&self, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.len(), "weight vector length mismatch");
        sidefp_parallel::reduce_sum(self.len(), |i| {
            let row = self.values.row(i);
            w[i] * row.iter().zip(w).map(|(k, wj)| k * wj).sum::<f64>()
        })
    }

    /// Per-row sums of the matrix.
    pub fn row_sums(&self) -> Vec<f64> {
        sidefp_parallel::map_indexed(self.len(), |i| self.values.row(i).iter().sum())
    }
}

/// The full symmetric matrix of pairwise squared distances between
/// `data`'s rows, computed by the fused `‖x‖² + ‖y‖² − 2·X·Xᵀ` epilogue
/// on the packed-panel GEMM (clamped at zero; the diagonal is exactly
/// zero).
pub fn pairwise_squared_distances(data: &Matrix) -> Matrix {
    let n = data.nrows();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    let norms = row_norms(data);
    let mut d2 = Matrix::zeros(n, n);
    gemm::syrk_fused(
        data,
        &Epilogue::SquaredDistance {
            a_norms: &norms,
            b_norms: &norms,
        },
        &mut d2,
    );
    mirror_lower_triangle(&mut d2);
    d2
}

/// Per-row squared norms with the micro-kernel's own ascending fold, so
/// the symmetric diagonal cancels bit-exactly (see
/// [`gemm::self_dot_fold`]).
fn row_norms(data: &Matrix) -> Vec<f64> {
    sidefp_parallel::map_indexed(data.nrows(), |i| gemm::self_dot_fold(data.row(i)))
}

/// Applies `f(i, j, value)` to every entry of a rectangular matrix in
/// parallel row chunks, writing the result back in place.
fn map_rows<F>(values: &mut Matrix, f: F)
where
    F: Fn(usize, usize, f64) -> f64 + Sync,
{
    let (nrows, ncols) = values.shape();
    let row_blocks = sidefp_parallel::split_even(nrows, sidefp_parallel::current_threads());
    let cuts: Vec<usize> = row_blocks.iter().skip(1).map(|r| r.start * ncols).collect();
    sidefp_parallel::for_each_split_mut(values.as_mut_slice(), &cuts, |block, slice| {
        let rows = row_blocks[block].clone();
        for (local, i) in rows.clone().enumerate() {
            let out = &mut slice[local * ncols..(local + 1) * ncols];
            for (j, v) in out.iter_mut().enumerate() {
                *v = f(i, j, *v);
            }
        }
    });
}

/// Copies the strict upper triangle onto the lower one; cheap copies, no
/// kernel evaluations.
fn mirror_lower_triangle(values: &mut Matrix) {
    let n = values.nrows();
    for i in 1..n {
        for j in 0..i {
            values[(i, j)] = values[(j, i)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sidefp_parallel::with_threads;

    fn sample(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| ((i * 13 + j * 5) % 17) as f64 * 0.17 - 1.0)
    }

    /// |got − want| relative to max(|want|, 1).
    fn rel_err(got: f64, want: f64) -> f64 {
        (got - want).abs() / want.abs().max(1.0)
    }

    #[test]
    fn symmetric_matches_direct_evaluation() {
        let data = sample(23, 4);
        let kernel = Kernel::Rbf { gamma: 0.7 };
        let gram = GramMatrix::symmetric(kernel, &data);
        for i in 0..23 {
            for j in 0..23 {
                // GEMM-form distances differ from the per-pair loop by
                // O(ε) rounding; the contract is ≤1e-9 relative error.
                let expected = kernel.eval(data.row(i), data.row(j));
                let got = gram.matrix()[(i, j)];
                assert!(
                    rel_err(got, expected) < 1e-9,
                    "({i}, {j}): {got} vs {expected}"
                );
            }
        }
        // The diagonal cancels exactly: RBF self-similarity is exactly 1.
        for i in 0..23 {
            assert_eq!(gram.matrix()[(i, i)], 1.0, "diagonal {i}");
        }
        assert_eq!(gram.kernel(), kernel);
        assert_eq!(gram.len(), 23);
        assert!(!gram.is_empty());
    }

    #[test]
    fn symmetric_is_exactly_symmetric() {
        let data = sample(19, 5);
        let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 1.1 }, &data);
        for i in 0..19 {
            for j in 0..19 {
                assert_eq!(gram.matrix()[(i, j)], gram.matrix()[(j, i)]);
            }
        }
    }

    #[test]
    fn symmetric_identical_at_any_thread_count() {
        let data = sample(41, 3);
        let kernel = Kernel::Rbf { gamma: 1.3 };
        let reference = with_threads(1, || GramMatrix::symmetric(kernel, &data));
        for threads in [2, 3, 8] {
            let got = with_threads(threads, || GramMatrix::symmetric(kernel, &data));
            assert_eq!(
                got.matrix().as_slice(),
                reference.matrix().as_slice(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cross_matches_direct_evaluation() {
        let a = sample(7, 3);
        let b = sample(11, 3);
        let kernel = Kernel::Linear;
        let cross = GramMatrix::cross(kernel, &a, &b).unwrap();
        assert_eq!(cross.shape(), (7, 11));
        for i in 0..7 {
            for j in 0..11 {
                assert!(rel_err(cross[(i, j)], kernel.eval(a.row(i), b.row(j))) < 1e-9);
            }
        }
    }

    #[test]
    fn cross_rbf_and_polynomial_match_direct_evaluation() {
        let a = sample(6, 4);
        let b = sample(9, 4);
        for kernel in [
            Kernel::Rbf { gamma: 0.9 },
            Kernel::Polynomial {
                degree: 3,
                coef0: 1.5,
            },
        ] {
            let cross = GramMatrix::cross(kernel, &a, &b).unwrap();
            for i in 0..6 {
                for j in 0..9 {
                    let expected = kernel.eval(a.row(i), b.row(j));
                    assert!(
                        rel_err(cross[(i, j)], expected) < 1e-9,
                        "{kernel:?} ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_rejects_column_mismatch() {
        let a = sample(4, 3);
        let b = sample(4, 2);
        assert!(matches!(
            GramMatrix::cross(Kernel::Linear, &a, &b),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn pairwise_squared_distances_match_naive_loop() {
        let data = sample(17, 6);
        let d2 = pairwise_squared_distances(&data);
        for i in 0..17 {
            for j in 0..17 {
                let naive: f64 = data
                    .row(i)
                    .iter()
                    .zip(data.row(j))
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(
                    rel_err(d2[(i, j)], naive) < 1e-9,
                    "({i}, {j}): {} vs {naive}",
                    d2[(i, j)]
                );
                assert!(d2[(i, j)] >= 0.0);
            }
        }
        for i in 0..17 {
            assert_eq!(d2[(i, i)], 0.0, "diagonal {i}");
        }
    }

    #[test]
    fn from_squared_distances_bit_identical_to_symmetric() {
        let data = sample(21, 4);
        let kernel = Kernel::Rbf { gamma: 0.9 };
        let direct = GramMatrix::symmetric(kernel, &data);
        let d2 = pairwise_squared_distances(&data);
        let shared = GramMatrix::from_squared_distances(kernel, d2).unwrap();
        assert_eq!(shared.matrix().as_slice(), direct.matrix().as_slice());
        assert_eq!(shared.kernel(), kernel);
    }

    #[test]
    fn from_squared_distances_rejects_bad_inputs() {
        let d2 = pairwise_squared_distances(&sample(5, 2));
        assert!(matches!(
            GramMatrix::from_squared_distances(Kernel::Linear, d2),
            Err(StatsError::InvalidParameter { .. })
        ));
        assert!(matches!(
            GramMatrix::from_squared_distances(Kernel::Rbf { gamma: 1.0 }, Matrix::zeros(3, 4)),
            Err(StatsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn block_and_total_sums_agree() {
        let data = sample(15, 2);
        let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.4 }, &data);
        let all: Vec<usize> = (0..15).collect();
        let brute: f64 = (0..15)
            .flat_map(|i| (0..15).map(move |j| (i, j)))
            .map(|(i, j)| gram.matrix()[(i, j)])
            .sum();
        assert!((gram.block_sum(&all, &all) - brute).abs() < 1e-12);
        assert!((gram.total_sum() - brute).abs() < 1e-12);
        let left = &all[..7];
        let right = &all[7..];
        let brute_lr: f64 = left
            .iter()
            .flat_map(|&i| right.iter().map(move |&j| (i, j)))
            .map(|(i, j)| gram.matrix()[(i, j)])
            .sum();
        assert!((gram.block_sum(left, right) - brute_lr).abs() < 1e-12);
    }

    #[test]
    fn weighted_quadratic_matches_brute_force() {
        let data = sample(9, 2);
        let gram = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.8 }, &data);
        let w: Vec<f64> = (0..9).map(|i| 0.3 + 0.1 * i as f64).collect();
        let brute: f64 = (0..9)
            .flat_map(|i| (0..9).map(move |j| (i, j)))
            .map(|(i, j)| w[i] * w[j] * gram.matrix()[(i, j)])
            .sum();
        assert!((gram.weighted_quadratic(&w) - brute).abs() < 1e-12);
    }

    #[test]
    fn row_sums_match_matrix_rows() {
        let data = sample(8, 2);
        let gram = GramMatrix::symmetric(Kernel::Linear, &data);
        let sums = gram.row_sums();
        for (i, s) in sums.iter().enumerate() {
            let expected: f64 = gram.matrix().row(i).iter().sum();
            assert_eq!(*s, expected);
        }
    }

    #[test]
    fn empty_gram_is_empty() {
        let gram = GramMatrix::symmetric(Kernel::Linear, &Matrix::zeros(0, 0));
        assert!(gram.is_empty());
        assert_eq!(gram.total_sum(), 0.0);
        assert_eq!(gram.clone().into_matrix().shape(), (0, 0));
        assert_eq!(
            pairwise_squared_distances(&Matrix::zeros(0, 0)).shape(),
            (0, 0)
        );
    }
}
