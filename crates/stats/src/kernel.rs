use sidefp_linalg::{vecops, Matrix};

use crate::StatsError;

/// A positive-definite kernel function on `ℝᵈ`.
///
/// Kernels are shared between the one-class SVM (trusted-boundary learning)
/// and kernel mean matching (covariate-shift correction). The RBF kernel is
/// the workhorse; linear and polynomial variants exist for ablations.
///
/// # Example
///
/// ```
/// use sidefp_stats::Kernel;
///
/// let k = Kernel::Rbf { gamma: 0.5 };
/// assert!((k.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
/// assert!(k.eval(&[0.0], &[2.0]) < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Kernel {
    /// Gaussian RBF: `exp(−γ‖x − y‖²)`.
    Rbf {
        /// Inverse squared length scale; must be positive.
        gamma: f64,
    },
    /// Linear kernel `⟨x, y⟩`.
    Linear,
    /// Polynomial kernel `(⟨x, y⟩ + coef0)^degree`.
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
        /// Additive constant.
        coef0: f64,
    },
}

impl Default for Kernel {
    /// RBF with unit `γ`; callers typically override `γ` with
    /// [`Kernel::rbf_median_heuristic`].
    fn default() -> Self {
        Kernel::Rbf { gamma: 1.0 }
    }
}

impl Kernel {
    /// Evaluates the kernel on a pair of points.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        match *self {
            Kernel::Rbf { gamma } => vecops::exp(-gamma * vecops::squared_distance(x, y)),
            Kernel::Linear => vecops::dot(x, y),
            Kernel::Polynomial { degree, coef0 } => (vecops::dot(x, y) + coef0).powi(degree as i32),
        }
    }

    /// Validates the kernel's hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive `γ` or a
    /// zero polynomial degree.
    pub fn validate(&self) -> Result<(), StatsError> {
        match *self {
            Kernel::Rbf { gamma } if !(gamma > 0.0 && gamma.is_finite()) => {
                Err(StatsError::InvalidParameter {
                    name: "gamma",
                    reason: format!("must be positive and finite, got {gamma}"),
                })
            }
            Kernel::Polynomial { degree: 0, .. } => Err(StatsError::InvalidParameter {
                name: "degree",
                reason: "polynomial degree must be at least 1".into(),
            }),
            _ => Ok(()),
        }
    }

    /// Gram matrix `K[i][j] = k(a_i, b_j)` for rows of `a` and `b`.
    ///
    /// Delegates to the shared parallel engine in [`crate::GramMatrix`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if the column counts differ.
    pub fn gram(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, StatsError> {
        crate::GramMatrix::cross(*self, a, b)
    }

    /// Symmetric Gram matrix of a single dataset (exploits symmetry).
    ///
    /// Delegates to the shared parallel engine in [`crate::GramMatrix`].
    pub fn gram_symmetric(&self, a: &Matrix) -> Matrix {
        crate::GramMatrix::symmetric(*self, a).into_matrix()
    }

    /// The median heuristic for the RBF bandwidth: `γ = 1 / (2·median²)`
    /// where the median is over pairwise distances of `data` rows.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] for fewer than two rows.
    /// - [`StatsError::DegenerateData`] if all points coincide.
    pub fn rbf_median_heuristic(data: &Matrix) -> Result<Kernel, StatsError> {
        // One GEMM-form pass produces every pairwise squared distance.
        Self::rbf_median_heuristic_from_sq_distances(&crate::gram::pairwise_squared_distances(data))
    }

    /// [`Kernel::rbf_median_heuristic`] on an already-computed matrix of
    /// pairwise squared distances (see
    /// [`crate::gram::pairwise_squared_distances`]). Callers that also
    /// need a Gram matrix over the same rows can compute the distances
    /// once and feed both this and
    /// [`crate::GramMatrix::from_squared_distances`].
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] for fewer than two rows.
    /// - [`StatsError::DegenerateData`] if all points coincide.
    pub fn rbf_median_heuristic_from_sq_distances(d2: &Matrix) -> Result<Kernel, StatsError> {
        let n = d2.nrows();
        if n < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: n });
        }
        // Only the strict upper triangle feeds the order statistic. The
        // median of distances is recovered from the *squared* distances:
        // sorting squares preserves the order, so we select the middle
        // order statistics first and take square roots after — the same
        // interpolation [`crate::descriptive::median`] applies, without
        // an O(n²) pass of square roots.
        let mut sq: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            let row = d2.row(i);
            sq.extend(row[(i + 1)..].iter().copied().filter(|v| *v > 0.0));
        }
        if sq.is_empty() {
            return Err(StatsError::DegenerateData(
                "all points coincide; median heuristic undefined".into(),
            ));
        }
        // Only the two middle order statistics matter, so an O(n²) select
        // replaces the O(n² log n) full sort. Ties make the selected
        // *positions* partition-dependent, but the selected *values* are
        // the order statistics either way, so `med` is unchanged.
        let pos = 0.5 * (sq.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        let (_, lo_val, rest) = sq.select_nth_unstable_by(lo, f64::total_cmp);
        let lo_val = *lo_val;
        let hi_val = if hi > lo {
            rest.iter().copied().fold(f64::INFINITY, f64::min)
        } else {
            lo_val
        };
        let med = lo_val.sqrt() * (1.0 - frac) + hi_val.sqrt() * frac;
        Ok(Kernel::Rbf {
            gamma: 1.0 / (2.0 * med * med),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_properties() {
        let k = Kernel::Rbf { gamma: 2.0 };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-15);
        // The vectorized exp agrees with libm to ~3e-13 relative, not to
        // the last ulp; 1e-12 is the documented contract tolerance.
        let v = k.eval(&[0.0], &[1.0]);
        assert!((v - (-2.0_f64).exp()).abs() < 1e-12);
        // Symmetry.
        assert_eq!(k.eval(&[0.3], &[1.7]), k.eval(&[1.7], &[0.3]));
    }

    #[test]
    fn linear_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn polynomial_known_value() {
        let k = Kernel::Polynomial {
            degree: 2,
            coef0: 1.0,
        };
        // (1*1 + 1)² = 4
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    fn validate_catches_bad_parameters() {
        assert!(Kernel::Rbf { gamma: 0.0 }.validate().is_err());
        assert!(Kernel::Rbf { gamma: -1.0 }.validate().is_err());
        assert!(Kernel::Rbf { gamma: f64::NAN }.validate().is_err());
        assert!(Kernel::Polynomial {
            degree: 0,
            coef0: 0.0
        }
        .validate()
        .is_err());
        assert!(Kernel::default().validate().is_ok());
        assert!(Kernel::Linear.validate().is_ok());
    }

    #[test]
    fn gram_matrix_shapes_and_symmetry() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let k = Kernel::default();
        let g = k.gram_symmetric(&a);
        assert_eq!(g.shape(), (3, 3));
        assert!(g.is_symmetric(1e-15));
        for i in 0..3 {
            assert!((g[(i, i)] - 1.0).abs() < 1e-15);
        }
        let b = Matrix::from_rows(&[&[0.5, 0.5]]).unwrap();
        let cross = k.gram(&a, &b).unwrap();
        assert_eq!(cross.shape(), (3, 1));
        assert!(k.gram(&a, &Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn gram_matches_symmetric_gram() {
        let a = Matrix::from_rows(&[&[0.1, 0.2], &[0.3, -0.1]]).unwrap();
        let k = Kernel::Rbf { gamma: 0.7 };
        let g1 = k.gram(&a, &a).unwrap();
        let g2 = k.gram_symmetric(&a);
        assert!((&g1 - &g2).unwrap().max_abs() < 1e-15);
    }

    #[test]
    fn median_heuristic_scales_with_data() {
        // Points spaced by 1 → median distance 1ish → gamma ~ 0.5.
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        if let Kernel::Rbf { gamma } = Kernel::rbf_median_heuristic(&a).unwrap() {
            assert!(gamma > 0.2 && gamma < 0.6, "gamma {gamma}");
        } else {
            panic!("expected RBF kernel");
        }
        // Scaling the data by 10 shrinks gamma by 100.
        let b = Matrix::from_rows(&[&[0.0], &[10.0], &[20.0]]).unwrap();
        if let Kernel::Rbf { gamma } = Kernel::rbf_median_heuristic(&b).unwrap() {
            assert!(gamma > 0.002 && gamma < 0.006, "gamma {gamma}");
        } else {
            panic!("expected RBF kernel");
        }
    }

    #[test]
    fn median_heuristic_degenerate_inputs() {
        let one = Matrix::from_rows(&[&[1.0]]).unwrap();
        assert!(Kernel::rbf_median_heuristic(&one).is_err());
        let same = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        assert!(Kernel::rbf_median_heuristic(&same).is_err());
    }
}
