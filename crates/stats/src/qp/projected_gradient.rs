use sidefp_linalg::Matrix;

use crate::StatsError;

/// Configuration for the projected-gradient box-and-band QP solver.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxBandConfig {
    /// Upper bound `B` of the box `0 ≤ β_i ≤ B`.
    pub upper: f64,
    /// Half-width `ε` of the mean band `|mean(β) − 1| ≤ ε`.
    pub band: f64,
    /// Maximum gradient iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the iterate change (infinity norm).
    pub tol: f64,
}

impl Default for BoxBandConfig {
    fn default() -> Self {
        BoxBandConfig {
            upper: 1000.0,
            band: 0.1,
            max_iter: 2000,
            tol: 1e-7,
        }
    }
}

/// Projects `beta` onto the box `[0, B]ⁿ` intersected with the band
/// `|mean(β) − 1| ≤ ε` by alternating projections.
///
/// The two sets are convex and their intersection is non-empty whenever
/// `B ≥ 1 − ε` (the constant vector `1` is then nearly feasible), so the
/// alternation converges; a handful of rounds suffices in practice.
fn project_box_band(beta: &mut [f64], upper: f64, band: f64) {
    let n = beta.len() as f64;
    for _ in 0..64 {
        // Project onto the box.
        for b in beta.iter_mut() {
            *b = b.clamp(0.0, upper);
        }
        // Project onto the band: shift the mean into [1 − ε, 1 + ε].
        let mean: f64 = beta.iter().sum::<f64>() / n;
        let target = if mean < 1.0 - band {
            1.0 - band
        } else if mean > 1.0 + band {
            1.0 + band
        } else {
            // Box projection may have moved us; verify box feasibility.
            if beta.iter().all(|b| (0.0..=upper).contains(b)) {
                return;
            }
            continue;
        };
        let shift = target - mean;
        for b in beta.iter_mut() {
            *b += shift;
        }
    }
    // Final safety clamp: box feasibility is the hard constraint.
    for b in beta.iter_mut() {
        *b = b.clamp(0.0, upper);
    }
}

/// Solves `min ½βᵀKβ − κᵀβ` subject to `0 ≤ β_i ≤ B` and
/// `|mean(β) − 1| ≤ ε` by projected gradient descent.
///
/// This is the kernel-mean-matching QP (paper Eq. 4). `K` must be symmetric
/// positive semi-definite (a Gram matrix); the step size is derived from a
/// Gershgorin bound on its largest eigenvalue, so no line search is needed.
///
/// # Errors
///
/// - [`StatsError::DimensionMismatch`] if `kappa.len() != k.nrows()`.
/// - [`StatsError::InvalidParameter`] on non-positive `upper`/`band`,
///   or if the constraint set is empty (`B < 1 − ε`).
/// - [`StatsError::Linalg`] if `k` is not square.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::qp::{solve_box_band, BoxBandConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let k = Matrix::identity(3);
/// let kappa = vec![1.0, 1.0, 1.0];
/// let beta = solve_box_band(&k, &kappa, &BoxBandConfig::default())?;
/// // With K = I the unconstrained optimum is β = κ = 1, which is feasible.
/// assert!(beta.iter().all(|b| (b - 1.0).abs() < 1e-4));
/// # Ok(())
/// # }
/// ```
pub fn solve_box_band(
    k: &Matrix,
    kappa: &[f64],
    config: &BoxBandConfig,
) -> Result<Vec<f64>, StatsError> {
    Ok(solve_box_band_detailed(k, kappa, config)?.beta)
}

/// Like [`solve_box_band`], but fails with a typed error instead of
/// returning a best-effort iterate when the iteration budget runs out.
///
/// # Errors
///
/// All of [`solve_box_band`]'s errors, plus [`StatsError::NotConverged`]
/// when the iterate change is still above tolerance at `max_iter`.
pub fn solve_box_band_strict(
    k: &Matrix,
    kappa: &[f64],
    config: &BoxBandConfig,
) -> Result<Vec<f64>, StatsError> {
    let sol = solve_box_band_detailed(k, kappa, config)?;
    if !sol.converged {
        return Err(StatsError::NotConverged {
            algorithm: "box-band-qp",
            iterations: sol.iterations,
        });
    }
    Ok(sol.beta)
}

/// Outcome of a box-band QP solve, with convergence detail.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxBandSolution {
    /// The (always box-feasible) iterate at exit.
    pub beta: Vec<f64>,
    /// Gradient iterations performed.
    pub iterations: usize,
    /// Whether the iterate change fell below `tol` within the budget.
    pub converged: bool,
    /// Infinity-norm iterate change at exit (callers compare it against a
    /// relaxed tolerance to decide whether a best-effort iterate is usable).
    pub final_delta: f64,
}

/// [`solve_box_band`] with convergence diagnostics attached.
///
/// # Errors
///
/// Same as [`solve_box_band`]; exhausting the iteration budget is *not* an
/// error — it is reported through `converged` / `final_delta`.
pub fn solve_box_band_detailed(
    k: &Matrix,
    kappa: &[f64],
    config: &BoxBandConfig,
) -> Result<BoxBandSolution, StatsError> {
    if !k.is_square() {
        return Err(StatsError::Linalg(sidefp_linalg::LinalgError::NotSquare {
            shape: k.shape(),
        }));
    }
    let n = k.nrows();
    // Gershgorin bound on the spectral radius for the fixed step size.
    let mut lipschitz = 0.0_f64;
    for i in 0..n {
        let row_sum: f64 = k.row(i).iter().map(|v| v.abs()).sum();
        lipschitz = lipschitz.max(row_sum);
    }
    solve_box_band_core(
        n,
        |beta, out| Ok(k.matvec_into(beta, out)?),
        lipschitz,
        kappa,
        config,
    )
}

/// [`solve_box_band_detailed`] for a low-rank operator: `K = Φ Φᵀ` given
/// implicitly through the feature matrix `phi` (`n × r`), so every
/// gradient step costs `O(n·r)` instead of `O(n²)`.
///
/// The step size comes from a Gershgorin bound on the small Gram `ΦᵀΦ`
/// (which shares its nonzero spectrum with `ΦΦᵀ`). The inner mat-vec
/// accumulates `w = Φᵀβ` sequentially and maps `out_i = ⟨φ_i, w⟩`
/// per-element, so the trajectory is bit-identical at any thread count.
///
/// # Errors
///
/// Same as [`solve_box_band_detailed`], minus the squareness check
/// (`phi` is rectangular by design).
pub fn solve_box_band_lowrank(
    phi: &Matrix,
    kappa: &[f64],
    config: &BoxBandConfig,
) -> Result<BoxBandSolution, StatsError> {
    let n = phi.nrows();
    let lipschitz = sidefp_linalg::lowrank::gram_spectral_bound(phi);
    let mut w = vec![0.0; phi.ncols()];
    solve_box_band_core(
        n,
        move |beta, out| {
            w.fill(0.0);
            for (i, row) in phi.rows_iter().enumerate() {
                sidefp_linalg::vecops::axpy_mut(&mut w, beta[i], row);
            }
            let wv = &w;
            let products =
                sidefp_parallel::map_indexed(n, |i| sidefp_linalg::vecops::dot(phi.row(i), wv));
            out.copy_from_slice(&products);
            Ok(())
        },
        lipschitz,
        kappa,
        config,
    )
}

/// Shared projected-gradient loop behind the dense and low-rank entry
/// points. `matvec` computes `K β` into its output slice; the dense path
/// routes it through [`Matrix::matvec_into`] unchanged, which keeps that
/// path's floating-point trajectory bit-identical to the historical
/// implementation.
fn solve_box_band_core<F>(
    n: usize,
    mut matvec: F,
    lipschitz: f64,
    kappa: &[f64],
    config: &BoxBandConfig,
) -> Result<BoxBandSolution, StatsError>
where
    F: FnMut(&[f64], &mut [f64]) -> Result<(), StatsError>,
{
    if kappa.len() != n {
        return Err(StatsError::DimensionMismatch {
            expected: n,
            got: kappa.len(),
        });
    }
    if config.upper <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "upper",
            reason: format!("box upper bound must be positive, got {}", config.upper),
        });
    }
    if config.band <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "band",
            reason: format!("band half-width must be positive, got {}", config.band),
        });
    }
    if config.upper < 1.0 - config.band {
        return Err(StatsError::InvalidParameter {
            name: "upper",
            reason: format!(
                "constraint set empty: upper bound {} < 1 - band {}",
                config.upper,
                1.0 - config.band
            ),
        });
    }

    let step = 1.0 / lipschitz.max(1e-12);

    // Feasible start: the all-ones vector clamped into the box.
    let mut beta = vec![1.0_f64.min(config.upper); n];
    project_box_band(&mut beta, config.upper, config.band);

    let mut iterations = 0;
    let mut converged = false;
    let mut final_delta = f64::INFINITY;
    // Steady-state buffers, reused across iterations (the gradient loop
    // allocates nothing after this point).
    let mut grad = vec![0.0; n];
    let mut next = vec![0.0; n];
    for _ in 0..config.max_iter {
        // grad = K β − κ
        matvec(&beta, &mut grad)?;
        for (gi, ki) in grad.iter_mut().zip(kappa) {
            *gi -= ki;
        }
        for ((nx, b), g) in next.iter_mut().zip(&beta).zip(&grad) {
            *nx = b - step * g;
        }
        project_box_band(&mut next, config.upper, config.band);

        let delta = next
            .iter()
            .zip(&beta)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        std::mem::swap(&mut beta, &mut next);
        iterations += 1;
        final_delta = delta;
        if delta < config.tol {
            converged = true;
            break;
        }
    }
    if config.max_iter == 0 {
        // Degenerate budget: the feasible start is the solution by fiat.
        converged = true;
        final_delta = 0.0;
    }
    Ok(BoxBandSolution {
        beta,
        iterations,
        converged,
        final_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_recovers_kappa_when_feasible() {
        let k = Matrix::identity(4);
        let kappa = vec![0.9, 1.1, 1.0, 1.0];
        let beta = solve_box_band(&k, &kappa, &BoxBandConfig::default()).unwrap();
        for (b, t) in beta.iter().zip(&kappa) {
            assert!((b - t).abs() < 1e-3, "beta {b} target {t}");
        }
    }

    #[test]
    fn box_constraint_binds() {
        let k = Matrix::identity(2);
        // Unconstrained optimum is (5, 5) but box caps at 2; the mean band
        // then pulls toward mean 1 + eps.
        let kappa = vec![5.0, 5.0];
        let cfg = BoxBandConfig {
            upper: 2.0,
            band: 0.5,
            ..Default::default()
        };
        let beta = solve_box_band(&k, &kappa, &cfg).unwrap();
        for b in &beta {
            assert!(*b <= 2.0 + 1e-9 && *b >= 0.0);
        }
        let mean: f64 = beta.iter().sum::<f64>() / 2.0;
        assert!(mean <= 1.5 + 1e-6, "mean {mean} violates band");
    }

    #[test]
    fn mean_band_holds() {
        let k = Matrix::identity(3);
        let kappa = vec![0.0, 0.0, 0.0]; // optimum wants all zeros
        let cfg = BoxBandConfig {
            band: 0.2,
            ..Default::default()
        };
        let beta = solve_box_band(&k, &kappa, &cfg).unwrap();
        let mean: f64 = beta.iter().sum::<f64>() / 3.0;
        assert!(mean >= 0.8 - 1e-6, "mean {mean} fell below the band");
    }

    #[test]
    fn objective_decreases_from_start() {
        // Random-ish SPD kernel.
        let a = Matrix::from_rows(&[&[1.0, 0.3, 0.1], &[0.3, 1.0, 0.2], &[0.1, 0.2, 1.0]]).unwrap();
        let kappa = vec![2.0, 0.5, 1.5];
        let obj = |b: &[f64]| -> f64 {
            let kb = a.matvec(b).unwrap();
            0.5 * b.iter().zip(&kb).map(|(x, y)| x * y).sum::<f64>()
                - kappa.iter().zip(b).map(|(k, x)| k * x).sum::<f64>()
        };
        let start = vec![1.0; 3];
        let beta = solve_box_band(&a, &kappa, &BoxBandConfig::default()).unwrap();
        assert!(obj(&beta) <= obj(&start) + 1e-9);
    }

    #[test]
    fn rejects_invalid_config() {
        let k = Matrix::identity(2);
        let kappa = vec![1.0, 1.0];
        let bad_upper = BoxBandConfig {
            upper: 0.0,
            ..Default::default()
        };
        assert!(solve_box_band(&k, &kappa, &bad_upper).is_err());
        let bad_band = BoxBandConfig {
            band: 0.0,
            ..Default::default()
        };
        assert!(solve_box_band(&k, &kappa, &bad_band).is_err());
        let empty_set = BoxBandConfig {
            upper: 0.5,
            band: 0.1,
            ..Default::default()
        };
        assert!(solve_box_band(&k, &kappa, &empty_set).is_err());
    }

    #[test]
    fn rejects_bad_shapes() {
        let k = Matrix::zeros(2, 3);
        assert!(solve_box_band(&k, &[1.0, 1.0], &BoxBandConfig::default()).is_err());
        let k = Matrix::identity(2);
        assert!(solve_box_band(&k, &[1.0], &BoxBandConfig::default()).is_err());
    }

    #[test]
    fn detailed_solve_reports_convergence() {
        let k = Matrix::identity(3);
        let kappa = vec![1.0, 1.0, 1.0];
        let sol = solve_box_band_detailed(&k, &kappa, &BoxBandConfig::default()).unwrap();
        assert!(sol.converged);
        assert!(sol.final_delta < BoxBandConfig::default().tol);
        assert!(sol.iterations >= 1);
        // The plain wrapper returns the same iterate.
        let beta = solve_box_band(&k, &kappa, &BoxBandConfig::default()).unwrap();
        assert_eq!(beta, sol.beta);
    }

    #[test]
    fn strict_solve_errors_when_budget_exhausted() {
        let k = Matrix::from_rows(&[&[1.0, 0.3], &[0.3, 1.0]]).unwrap();
        let kappa = vec![3.0, 0.2];
        let cfg = BoxBandConfig {
            tol: 1e-14,
            max_iter: 1,
            ..Default::default()
        };
        let sol = solve_box_band_detailed(&k, &kappa, &cfg).unwrap();
        assert!(!sol.converged);
        assert!(sol.final_delta > cfg.tol);
        assert!(matches!(
            solve_box_band_strict(&k, &kappa, &cfg),
            Err(StatsError::NotConverged {
                algorithm: "box-band-qp",
                ..
            })
        ));
        // Best-effort path still hands back a feasible iterate.
        assert!(solve_box_band(&k, &kappa, &cfg).is_ok());
    }

    #[test]
    fn lowrank_solve_tracks_dense_solve_on_factored_operator() {
        // K = ΦΦᵀ materialized densely vs served through the factor. The
        // step sizes differ (row-sum vs small-Gram Gershgorin bound), so
        // compare converged solutions, not trajectories.
        let phi = Matrix::from_fn(12, 3, |i, j| ((i * 5 + j * 7) % 9) as f64 * 0.31 - 1.0);
        let dense = phi.matmul(&phi.transpose()).unwrap();
        let kappa: Vec<f64> = (0..12).map(|i| 1.0 + 0.1 * (i as f64).sin()).collect();
        let cfg = BoxBandConfig {
            upper: 5.0,
            band: 0.3,
            max_iter: 100_000,
            tol: 1e-9,
        };
        let want = solve_box_band_detailed(&dense, &kappa, &cfg).unwrap();
        let got = solve_box_band_lowrank(&phi, &kappa, &cfg).unwrap();
        assert!(got.converged && want.converged);
        // K is rank-deficient (r = 3 ≪ n = 12), so the optimal face is
        // flat and the two step sizes can park at different optimal
        // iterates: compare objective values, which must agree.
        let obj = |b: &[f64]| {
            let kb = dense.matvec(b).unwrap();
            0.5 * b.iter().zip(&kb).map(|(x, y)| x * y).sum::<f64>()
                - kappa.iter().zip(b).map(|(k, x)| k * x).sum::<f64>()
        };
        let (go, wo) = (obj(&got.beta), obj(&want.beta));
        // The stopping rule is iterate change, not optimality gap, and the
        // two paths use different step sizes, so allow a small slack.
        assert!(
            (go - wo).abs() < 1e-3 * wo.abs().max(1.0),
            "objectives diverge: {go} vs {wo}"
        );
        // Both iterates must be box-feasible.
        for b in got.beta.iter().chain(&want.beta) {
            assert!(*b >= -1e-12 && *b <= cfg.upper + 1e-12);
        }
    }

    #[test]
    fn lowrank_solve_bit_identical_across_thread_counts() {
        let phi = Matrix::from_fn(40, 4, |i, j| ((i * 3 + j) % 13) as f64 * 0.17 - 0.9);
        let kappa = vec![1.0; 40];
        let cfg = BoxBandConfig::default();
        let one = sidefp_parallel::with_threads(1, || {
            solve_box_band_lowrank(&phi, &kappa, &cfg).unwrap()
        });
        let eight = sidefp_parallel::with_threads(8, || {
            solve_box_band_lowrank(&phi, &kappa, &cfg).unwrap()
        });
        assert_eq!(one.iterations, eight.iterations);
        for (a, b) in one.beta.iter().zip(&eight.beta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn projection_satisfies_both_sets() {
        let mut beta = vec![-5.0, 10.0, 0.5];
        project_box_band(&mut beta, 2.0, 0.3);
        for b in &beta {
            assert!(*b >= -1e-9 && *b <= 2.0 + 1e-9);
        }
        let mean: f64 = beta.iter().sum::<f64>() / 3.0;
        assert!((0.7 - 1e-6..=1.3 + 1e-6).contains(&mean), "mean {mean}");
    }
}
