use sidefp_linalg::Matrix;

use crate::StatsError;

/// Maximal-violating-pair scan: `(i_best, g_min, j_best, g_max)` where `i`
/// ranges over coordinates free to increase (`α_i < C`) and `j` over those
/// free to decrease (`α_j > 0`). `usize::MAX` marks an empty candidate set.
///
/// Shared with the feature-space decomposition solver in
/// [`crate::approx`], which runs the same scan on its working-set blocks.
pub(crate) fn select_pair(alpha: &[f64], grad: &[f64], c: f64) -> (usize, f64, usize, f64) {
    let mut i_best = usize::MAX;
    let mut g_min = f64::INFINITY;
    let mut j_best = usize::MAX;
    let mut g_max = f64::NEG_INFINITY;
    for (t, (&a, &g)) in alpha.iter().zip(grad.iter()).enumerate() {
        // Branchless eligibility (compiles to a select): ineligible
        // coordinates become ±∞ so the single rarely-taken comparison
        // below is the only branch the predictor has to learn.
        let up = if a < c - 1e-15 { g } else { f64::INFINITY };
        let down = if a > 1e-15 { g } else { f64::NEG_INFINITY };
        if up < g_min {
            g_min = up;
            i_best = t;
        }
        if down > g_max {
            g_max = down;
            j_best = t;
        }
    }
    (i_best, g_min, j_best, g_max)
}

/// A source of rows of the SMO matrix `Q`.
///
/// The solver only ever needs `Q` through three views: the working-set
/// pair of rows for the analytic update, the diagonal for the curvature
/// denominator, and one full mat-vec for the feasible start's gradient.
/// Abstracting those lets the same solver run off a dense precomputed
/// [`Matrix`] (fastest when `n²` fits comfortably in memory) or off an
/// on-demand kernel-row cache such as
/// [`KernelRowCache`](crate::KernelRowCache) (bounded memory for large
/// populations).
///
/// Methods take `&mut self` so row sources may cache computed rows.
pub trait WorkingSetQ {
    /// Number of rows/columns of the square matrix.
    fn len(&self) -> usize;

    /// `true` for an empty (0×0) matrix.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The diagonal entry `Q[i][i]`.
    fn diag(&mut self, i: usize) -> f64;

    /// Rows `i` and `j` as slices, `i ≠ j`.
    fn pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]);

    /// The product `Q·α` (used once, for the feasible start's gradient).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] if `alpha.len()` differs
    /// from [`WorkingSetQ::len`].
    fn matvec(&mut self, alpha: &[f64]) -> Result<Vec<f64>, StatsError>;
}

/// Dense precomputed `Q`: rows are slices into the matrix storage.
impl WorkingSetQ for &Matrix {
    fn len(&self) -> usize {
        self.nrows()
    }

    fn diag(&mut self, i: usize) -> f64 {
        self[(i, i)]
    }

    fn pair(&mut self, i: usize, j: usize) -> (&[f64], &[f64]) {
        (self.row(i), self.row(j))
    }

    fn matvec(&mut self, alpha: &[f64]) -> Result<Vec<f64>, StatsError> {
        Ok(Matrix::matvec(self, alpha)?)
    }
}

/// Configuration for the SMO solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoConfig {
    /// Per-coordinate upper bound `C` (for the ν-OCSVM, `C = 1/(ν·n)`).
    pub upper: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Maximum number of pairwise updates.
    pub max_iter: usize,
}

impl Default for SmoConfig {
    fn default() -> Self {
        SmoConfig {
            upper: 1.0,
            tol: 1e-6,
            max_iter: 100_000,
        }
    }
}

/// Result of an SMO run.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoSolution {
    /// Optimal dual variables.
    pub alpha: Vec<f64>,
    /// Final gradient `Qα` (useful for computing the SVM offset ρ).
    pub gradient: Vec<f64>,
    /// Number of pairwise updates performed.
    pub iterations: usize,
    /// Whether the KKT conditions were met within tolerance.
    pub converged: bool,
    /// KKT violation gap `g_max − g_min` at exit (below the configured
    /// tolerance when `converged`; callers use it to decide whether a
    /// best-effort solution is acceptable under a relaxed tolerance).
    pub kkt_gap: f64,
}

/// Sequential minimal optimization for `min ½αᵀQα` subject to `Σα = 1`,
/// `0 ≤ α_i ≤ C`.
///
/// This is exactly the dual of the ν-one-class SVM (all labels positive, no
/// linear term). The solver picks the maximal-violating pair at each step
/// and updates it analytically, so the equality constraint is preserved by
/// construction.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::qp::{SmoConfig, SmoSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Matrix::identity(4);
/// let sol = SmoSolver::new(SmoConfig::default()).solve(&q)?;
/// // Identity Q: optimum spreads mass uniformly, α_i = 1/4.
/// for a in &sol.alpha {
///     assert!((a - 0.25).abs() < 1e-4);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmoSolver {
    config: SmoConfig,
}

impl SmoSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SmoConfig) -> Self {
        SmoSolver { config }
    }

    /// Solves the QP for the symmetric PSD matrix `q`.
    ///
    /// # Errors
    ///
    /// - [`StatsError::Linalg`] if `q` is not square.
    /// - [`StatsError::InvalidParameter`] if `upper·n < 1` (infeasible) or
    ///   `upper ≤ 0`.
    /// - Never returns [`StatsError::NotConverged`]: a best-effort solution
    ///   with `converged = false` is returned instead, because a slightly
    ///   sub-optimal boundary is still usable downstream.
    pub fn solve(&self, q: &Matrix) -> Result<SmoSolution, StatsError> {
        if !q.is_square() {
            return Err(StatsError::Linalg(sidefp_linalg::LinalgError::NotSquare {
                shape: q.shape(),
            }));
        }
        self.solve_with(&mut { q })
    }

    /// Solves the QP against any [`WorkingSetQ`] row source — a dense
    /// matrix or an on-demand kernel-row cache.
    ///
    /// # Errors
    ///
    /// Same contract as [`SmoSolver::solve`].
    pub fn solve_with<Q: WorkingSetQ>(&self, q: &mut Q) -> Result<SmoSolution, StatsError> {
        let (n, c) = self.validate(q)?;

        // Feasible start: uniform weights, clipped into the box. Uniform is
        // always feasible because C·n ≥ 1.
        let mut alpha = vec![(1.0 / n as f64).min(c); n];
        // Repair any mass deficit from clipping (cannot happen for uniform,
        // but keep the invariant explicit).
        let mass: f64 = alpha.iter().sum();
        if (mass - 1.0).abs() > 1e-12 {
            let scale = 1.0 / mass;
            for a in &mut alpha {
                *a *= scale;
            }
        }

        self.iterate(q, alpha)
    }

    /// Solves the QP starting from a caller-supplied iterate instead of the
    /// uniform feasible point.
    ///
    /// This is the warm-start entry: an `α` preserved from a previous fit on
    /// similar data lands near the new optimum, so the maximal-violating-pair
    /// loop converges in far fewer updates than a cold solve. The start is
    /// repaired into the feasible set before iterating — each coordinate is
    /// clamped into `[0, C]` and the simplex mass `Σα = 1` is restored by
    /// proportional scaling (excess) or headroom-proportional fill (deficit),
    /// so any finite vector of the right length is a legal start.
    ///
    /// # Errors
    ///
    /// All of [`SmoSolver::solve_with`]'s errors, plus
    /// [`StatsError::DimensionMismatch`] when `start.len() ≠ q.len()` and
    /// [`StatsError::InvalidParameter`] for non-finite start entries.
    pub fn solve_with_start<Q: WorkingSetQ>(
        &self,
        q: &mut Q,
        start: &[f64],
    ) -> Result<SmoSolution, StatsError> {
        let (n, c) = self.validate(q)?;
        if start.len() != n {
            return Err(StatsError::DimensionMismatch {
                expected: n,
                got: start.len(),
            });
        }
        crate::check_finite_slice("smo_start", start)?;

        let mut alpha: Vec<f64> = start.iter().map(|&a| a.clamp(0.0, c)).collect();
        let mass: f64 = alpha.iter().sum();
        if mass > 1.0 + 1e-12 {
            let scale = 1.0 / mass;
            for a in &mut alpha {
                *a *= scale;
            }
        } else if mass < 1.0 - 1e-12 {
            // Distribute the deficit proportionally to per-coordinate
            // headroom: Σ(C − α_i) = C·n − mass ≥ 1 − mass > 0, so the fill
            // lands exactly on the simplex without leaving the box.
            let headroom = c * n as f64 - mass;
            let fill = (1.0 - mass) / headroom;
            for a in &mut alpha {
                *a += fill * (c - *a);
            }
        }

        self.iterate(q, alpha)
    }

    fn validate<Q: WorkingSetQ>(&self, q: &mut Q) -> Result<(usize, f64), StatsError> {
        let n = q.len();
        let c = self.config.upper;
        if c <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "upper",
                reason: format!("must be positive, got {c}"),
            });
        }
        if (c * n as f64) < 1.0 - 1e-12 {
            return Err(StatsError::InvalidParameter {
                name: "upper",
                reason: format!("infeasible: upper * n = {} < 1", c * n as f64),
            });
        }
        Ok((n, c))
    }

    /// The shared maximal-violating-pair loop, from an already-feasible
    /// iterate (`α ∈ [0, C]ⁿ`, `Σα = 1`).
    fn iterate<Q: WorkingSetQ>(
        &self,
        q: &mut Q,
        mut alpha: Vec<f64>,
    ) -> Result<SmoSolution, StatsError> {
        let n = q.len();
        let c = self.config.upper;

        // gradient = Qα.
        let mut grad = q.matvec(&alpha)?;

        // Maximal violating pair on the starting iterate:
        //   i (can increase): α_i < C with minimal gradient,
        //   j (can decrease): α_j > 0 with maximal gradient.
        let (mut i_best, mut g_min, mut j_best, mut g_max) = select_pair(&alpha, &grad, c);

        let mut iterations = 0;
        let mut converged = false;
        let mut kkt_gap = 0.0;
        while iterations < self.config.max_iter {
            if i_best == usize::MAX || j_best == usize::MAX {
                kkt_gap = 0.0;
                converged = true;
                break;
            }
            kkt_gap = g_max - g_min;
            if kkt_gap < self.config.tol {
                converged = true;
                break;
            }
            let (i, j) = (i_best, j_best);

            // Analytic update along e_i − e_j: minimize
            //   ½(α + δ(e_i − e_j))ᵀ Q (α + δ(e_i − e_j))
            // → δ* = (g_j − g_i) / (Q_ii + Q_jj − 2Q_ij).
            let dii = q.diag(i);
            let djj = q.diag(j);
            let (qi, qj) = q.pair(i, j);
            let denom = dii + djj - 2.0 * qi[j];
            let mut delta = if denom > 1e-12 {
                (grad[j] - grad[i]) / denom
            } else {
                // Flat direction: move as far as the box allows.
                f64::INFINITY
            };
            // Box clipping. NaN or non-positive steps mean the pair is
            // numerically stuck.
            delta = delta.min(c - alpha[i]).min(alpha[j]);
            if delta.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                // Numerically stuck pair; treat as converged to avoid spin.
                converged = true;
                break;
            }

            alpha[i] += delta;
            alpha[j] -= delta;
            // Incremental gradient update grad += δ(Q e_i − Q e_j) fused
            // with the *next* pair selection: one pass over (grad, α, Q
            // rows) instead of an update pass plus a selection pass. The
            // gradient expression matches the plain loop element-for-element
            // (no cross-element reduction), so the trajectory is
            // bit-identical to the unfused form.
            i_best = usize::MAX;
            g_min = f64::INFINITY;
            j_best = usize::MAX;
            g_max = f64::NEG_INFINITY;
            for (t, ((g, &a), (&ki, &kj))) in grad
                .iter_mut()
                .zip(alpha.iter())
                .zip(qi.iter().zip(qj.iter()))
                .enumerate()
            {
                let v = *g + delta * (ki - kj);
                *g = v;
                // Branchless eligibility, as in `select_pair`.
                let up = if a < c - 1e-15 { v } else { f64::INFINITY };
                let down = if a > 1e-15 { v } else { f64::NEG_INFINITY };
                if up < g_min {
                    g_min = up;
                    i_best = t;
                }
                if down > g_max {
                    g_max = down;
                    j_best = t;
                }
            }
            iterations += 1;
        }

        if !converged {
            // Budget exhausted: report the gap of the *final* iterate, not of
            // the one the last update started from.
            let mut g_min = f64::INFINITY;
            let mut g_max = f64::NEG_INFINITY;
            for t in 0..n {
                if alpha[t] < c - 1e-15 {
                    g_min = g_min.min(grad[t]);
                }
                if alpha[t] > 1e-15 {
                    g_max = g_max.max(grad[t]);
                }
            }
            kkt_gap = if g_min.is_finite() && g_max.is_finite() {
                (g_max - g_min).max(0.0)
            } else {
                0.0
            };
        }

        Ok(SmoSolution {
            alpha,
            gradient: grad,
            iterations,
            converged,
            kkt_gap,
        })
    }

    /// Like [`SmoSolver::solve`], but fails with a typed error instead of
    /// returning a best-effort solution when the iteration budget runs out.
    ///
    /// # Errors
    ///
    /// All of [`SmoSolver::solve`]'s errors, plus
    /// [`StatsError::NotConverged`] when the KKT gap is still above
    /// tolerance at `max_iter`.
    pub fn solve_strict(&self, q: &Matrix) -> Result<SmoSolution, StatsError> {
        let sol = self.solve(q)?;
        if !sol.converged {
            return Err(StatsError::NotConverged {
                algorithm: "smo",
                iterations: sol.iterations,
            });
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objective(q: &Matrix, alpha: &[f64]) -> f64 {
        let qa = q.matvec(alpha).unwrap();
        0.5 * alpha.iter().zip(&qa).map(|(a, b)| a * b).sum::<f64>()
    }

    #[test]
    fn identity_spreads_mass_uniformly() {
        let q = Matrix::identity(5);
        let sol = SmoSolver::new(SmoConfig::default()).solve(&q).unwrap();
        assert!(sol.converged);
        for a in &sol.alpha {
            assert!((a - 0.2).abs() < 1e-4, "alpha {a}");
        }
    }

    #[test]
    fn mass_conservation_invariant() {
        let q = Matrix::from_rows(&[&[1.0, 0.9, 0.1], &[0.9, 1.0, 0.2], &[0.1, 0.2, 1.0]]).unwrap();
        let sol = SmoSolver::new(SmoConfig::default()).solve(&q).unwrap();
        let mass: f64 = sol.alpha.iter().sum();
        assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
        assert!(sol.alpha.iter().all(|a| *a >= -1e-12 && *a <= 1.0 + 1e-12));
    }

    #[test]
    fn box_constraint_respected() {
        let q = Matrix::identity(4);
        let cfg = SmoConfig {
            upper: 0.3,
            ..Default::default()
        };
        let sol = SmoSolver::new(cfg).solve(&q).unwrap();
        for a in &sol.alpha {
            assert!(*a <= 0.3 + 1e-12 && *a >= -1e-12);
        }
        let mass: f64 = sol.alpha.iter().sum();
        assert!((mass - 1.0).abs() < 1e-10);
    }

    #[test]
    fn beats_or_matches_uniform_start() {
        let q = Matrix::from_rows(&[
            &[2.0, 0.5, 0.0, 0.1],
            &[0.5, 1.0, 0.3, 0.0],
            &[0.0, 0.3, 1.5, 0.2],
            &[0.1, 0.0, 0.2, 0.8],
        ])
        .unwrap();
        let sol = SmoSolver::new(SmoConfig::default()).solve(&q).unwrap();
        let uniform = vec![0.25; 4];
        assert!(objective(&q, &sol.alpha) <= objective(&q, &uniform) + 1e-12);
    }

    #[test]
    fn correlated_q_concentrates_on_uncorrelated_point() {
        // Points 0 and 1 are near-duplicates (high Q entries); point 2 is
        // independent. The optimum should shift mass toward point 2.
        let q =
            Matrix::from_rows(&[&[1.0, 0.99, 0.0], &[0.99, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let sol = SmoSolver::new(SmoConfig::default()).solve(&q).unwrap();
        assert!(
            sol.alpha[2] > sol.alpha[0],
            "alpha {:?} should favor the independent point",
            sol.alpha
        );
    }

    #[test]
    fn infeasible_and_invalid_configs_rejected() {
        let q = Matrix::identity(2);
        let infeasible = SmoConfig {
            upper: 0.4, // 0.4 * 2 < 1
            ..Default::default()
        };
        assert!(SmoSolver::new(infeasible).solve(&q).is_err());
        let negative = SmoConfig {
            upper: -1.0,
            ..Default::default()
        };
        assert!(SmoSolver::new(negative).solve(&q).is_err());
        assert!(SmoSolver::new(SmoConfig::default())
            .solve(&Matrix::zeros(2, 3))
            .is_err());
    }

    #[test]
    fn tight_box_forces_uniform() {
        // With C = 1/n exactly, the only feasible point is uniform.
        let q = Matrix::from_rows(&[&[3.0, 0.1], &[0.1, 1.0]]).unwrap();
        let cfg = SmoConfig {
            upper: 0.5,
            ..Default::default()
        };
        let sol = SmoSolver::new(cfg).solve(&q).unwrap();
        assert!((sol.alpha[0] - 0.5).abs() < 1e-9);
        assert!((sol.alpha[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn converged_solution_reports_small_gap() {
        let q = Matrix::from_rows(&[&[1.0, 0.9, 0.1], &[0.9, 1.0, 0.2], &[0.1, 0.2, 1.0]]).unwrap();
        let cfg = SmoConfig::default();
        let sol = SmoSolver::new(cfg).solve(&q).unwrap();
        assert!(sol.converged);
        assert!(sol.kkt_gap < cfg.tol * 10.0, "gap {}", sol.kkt_gap);
    }

    #[test]
    fn strict_solve_errors_when_budget_exhausted() {
        // An absurd tolerance with zero iterations cannot converge.
        let q =
            Matrix::from_rows(&[&[1.0, 0.99, 0.0], &[0.99, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let cfg = SmoConfig {
            tol: 1e-15,
            max_iter: 1,
            ..Default::default()
        };
        let best_effort = SmoSolver::new(cfg).solve(&q).unwrap();
        assert!(!best_effort.converged);
        assert!(best_effort.kkt_gap > 0.0);
        assert!(matches!(
            SmoSolver::new(cfg).solve_strict(&q),
            Err(StatsError::NotConverged {
                algorithm: "smo",
                ..
            })
        ));
    }

    #[test]
    fn warm_start_from_optimum_converges_immediately() {
        let q = Matrix::from_rows(&[&[1.0, 0.9, 0.1], &[0.9, 1.0, 0.2], &[0.1, 0.2, 1.0]]).unwrap();
        let solver = SmoSolver::new(SmoConfig::default());
        let cold = solver.solve(&q).unwrap();
        let warm = solver.solve_with_start(&mut { &q }, &cold.alpha).unwrap();
        assert!(warm.converged);
        assert_eq!(warm.iterations, 0, "optimum should already satisfy KKT");
        for (a, b) in warm.alpha.iter().zip(&cold.alpha) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn warm_start_repairs_infeasible_iterates() {
        let q = Matrix::identity(4);
        let solver = SmoSolver::new(SmoConfig {
            upper: 0.4,
            ..Default::default()
        });
        // Out-of-box, wrong-mass starts must be clamped back onto the
        // feasible set before iterating.
        for start in [
            vec![5.0, -3.0, 0.2, 0.1],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.0, 0.0],
        ] {
            let sol = solver.solve_with_start(&mut { &q }, &start).unwrap();
            let mass: f64 = sol.alpha.iter().sum();
            assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
            assert!(sol.alpha.iter().all(|a| *a >= -1e-12 && *a <= 0.4 + 1e-12));
            assert!(sol.converged);
        }
    }

    #[test]
    fn warm_start_rejects_bad_inputs() {
        let q = Matrix::identity(3);
        let solver = SmoSolver::new(SmoConfig::default());
        assert!(matches!(
            solver.solve_with_start(&mut { &q }, &[0.5, 0.5]),
            Err(StatsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            solver.solve_with_start(&mut { &q }, &[f64::NAN, 0.5, 0.5]),
            Err(StatsError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn warm_start_matches_cold_solution() {
        let q = Matrix::from_rows(&[
            &[2.0, 0.5, 0.0, 0.1],
            &[0.5, 1.0, 0.3, 0.0],
            &[0.0, 0.3, 1.5, 0.2],
            &[0.1, 0.0, 0.2, 0.8],
        ])
        .unwrap();
        let solver = SmoSolver::new(SmoConfig::default());
        let cold = solver.solve(&q).unwrap();
        // A mildly perturbed optimum must land on the same solution.
        let start: Vec<f64> = cold.alpha.iter().map(|a| a + 0.01).collect();
        let warm = solver.solve_with_start(&mut { &q }, &start).unwrap();
        assert!(warm.converged);
        for (a, b) in warm.alpha.iter().zip(&cold.alpha) {
            assert!((a - b).abs() < 1e-4, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn gradient_output_matches_q_alpha() {
        let q = Matrix::from_rows(&[&[1.0, 0.2], &[0.2, 1.0]]).unwrap();
        let sol = SmoSolver::new(SmoConfig::default()).solve(&q).unwrap();
        let qa = q.matvec(&sol.alpha).unwrap();
        for (g, e) in sol.gradient.iter().zip(&qa) {
            assert!((g - e).abs() < 1e-9);
        }
    }
}
