//! Quadratic-program solvers backing the kernel methods.
//!
//! Two specialized solvers, matched to the two QPs the paper's flow needs:
//!
//! - [`solve_box_band`]: projected gradient descent for kernel mean matching
//!   (Eq. 4 of the paper) — minimize `½βᵀKβ − κᵀβ` over the box
//!   `0 ≤ β_i ≤ B` intersected with the mean band `|mean(β) − 1| ≤ ε`.
//! - [`SmoSolver`]: sequential minimal optimization for the ν-one-class SVM
//!   dual — minimize `½αᵀQα` over the simplex-box `Σα = 1`,
//!   `0 ≤ α_i ≤ C`.
//!
//! Both operate on dense [`Matrix`](sidefp_linalg::Matrix) Gram matrices,
//! which is the right trade-off at the problem sizes of this workspace
//! (tens to a few thousand samples).

mod projected_gradient;
mod smo;

pub use projected_gradient::{
    solve_box_band, solve_box_band_detailed, solve_box_band_lowrank, solve_box_band_strict,
    BoxBandConfig, BoxBandSolution,
};
pub(crate) use smo::select_pair;
pub use smo::{SmoConfig, SmoSolution, SmoSolver, WorkingSetQ};
