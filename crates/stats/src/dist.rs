//! Composable scalar and joint distributions for process-model sampling.
//!
//! The Monte Carlo process model draws latent factor values from simple
//! distributions; scenario experiments need to *transform* those draws —
//! shift a corner, widen a sigma, mix two populations — without rewriting
//! the sampler. [`Dist`] is a small closed algebra of scalar distributions
//! with shift/scale/mixture combinators, and [`JointNormal`] adds
//! correlated multivariate draws via a Cholesky factor, for process models
//! where factors co-vary (e.g. n- and p-implant dose tracking).

use rand::Rng;

use crate::{MultivariateNormal, StatsError};

/// A scalar sampling distribution, closed under shift, scale and mixture.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sidefp_stats::dist::Dist;
///
/// let skewed = Dist::normal(0.0, 1.0).shift(1.5).scale(0.5);
/// assert!((skewed.mean() - 0.75).abs() < 1e-12);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = skewed.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (≥ 0).
        sd: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Degenerate distribution: always `value`.
    Point {
        /// The constant value.
        value: f64,
    },
    /// Two-component mixture: draw from `a` with probability `weight_a`,
    /// else from `b`.
    Mixture {
        /// First component.
        a: Box<Dist>,
        /// Second component.
        b: Box<Dist>,
        /// Probability of the first component, in `[0, 1]`.
        weight_a: f64,
    },
}

impl Dist {
    /// Gaussian constructor.
    pub fn normal(mean: f64, sd: f64) -> Self {
        Dist::Normal { mean, sd }
    }

    /// Uniform constructor.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        Dist::Uniform { lo, hi }
    }

    /// Point-mass constructor.
    pub fn point(value: f64) -> Self {
        Dist::Point { value }
    }

    /// Two-component mixture constructor.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `weight_a ∉ [0, 1]`.
    pub fn mixture(a: Dist, b: Dist, weight_a: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&weight_a) {
            return Err(StatsError::InvalidParameter {
                name: "weight_a",
                reason: format!("mixture weight must be in [0, 1], got {weight_a}"),
            });
        }
        Ok(Dist::Mixture {
            a: Box::new(a),
            b: Box::new(b),
            weight_a,
        })
    }

    /// The distribution translated by `by` (models a process-corner
    /// offset).
    pub fn shift(self, by: f64) -> Self {
        match self {
            Dist::Normal { mean, sd } => Dist::Normal {
                mean: mean + by,
                sd,
            },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo + by,
                hi: hi + by,
            },
            Dist::Point { value } => Dist::Point { value: value + by },
            Dist::Mixture { a, b, weight_a } => Dist::Mixture {
                a: Box::new(a.shift(by)),
                b: Box::new(b.shift(by)),
                weight_a,
            },
        }
    }

    /// The distribution scaled by `by` about zero (models a sigma
    /// widening / tightening; `by` may be negative, flipping the sign).
    pub fn scale(self, by: f64) -> Self {
        match self {
            Dist::Normal { mean, sd } => Dist::Normal {
                mean: mean * by,
                sd: sd * by.abs(),
            },
            Dist::Uniform { lo, hi } => {
                let (a, b) = (lo * by, hi * by);
                Dist::Uniform {
                    lo: a.min(b),
                    hi: a.max(b),
                }
            }
            Dist::Point { value } => Dist::Point { value: value * by },
            Dist::Mixture { a, b, weight_a } => Dist::Mixture {
                a: Box::new(a.scale(by)),
                b: Box::new(b.scale(by)),
                weight_a,
            },
        }
    }

    /// Analytic mean.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Normal { mean, .. } => *mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Point { value } => *value,
            Dist::Mixture { a, b, weight_a } => weight_a * a.mean() + (1.0 - weight_a) * b.mean(),
        }
    }

    /// Analytic variance.
    pub fn variance(&self) -> f64 {
        match self {
            Dist::Normal { sd, .. } => sd * sd,
            Dist::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Dist::Point { .. } => 0.0,
            Dist::Mixture { a, b, weight_a } => {
                // Law of total variance.
                let m = self.mean();
                let wa = *weight_a;
                let wb = 1.0 - wa;
                wa * (a.variance() + (a.mean() - m).powi(2))
                    + wb * (b.variance() + (b.mean() - m).powi(2))
            }
        }
    }

    /// Draws one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Normal { mean, sd } => mean + sd * MultivariateNormal::standard_normal(rng),
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
            Dist::Point { value } => *value,
            Dist::Mixture { a, b, weight_a } => {
                // Draw the component selector first so the stream layout is
                // stable regardless of which branch wins.
                let u = rng.random::<f64>();
                if u < *weight_a {
                    a.sample(rng)
                } else {
                    b.sample(rng)
                }
            }
        }
    }
}

/// A correlated multivariate normal over a small factor vector: means plus
/// a covariance matrix, sampled through its Cholesky factor.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sidefp_stats::dist::JointNormal;
///
/// # fn main() -> Result<(), sidefp_stats::StatsError> {
/// // Two factors, strongly co-varying.
/// let joint = JointNormal::new(
///     vec![0.0, 0.0],
///     vec![vec![1.0, 0.9], vec![0.9, 1.0]],
/// )?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let draw = joint.sample(&mut rng);
/// assert_eq!(draw.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JointNormal {
    means: Vec<f64>,
    /// Lower-triangular Cholesky factor of the covariance, row-major.
    chol: Vec<Vec<f64>>,
}

impl JointNormal {
    /// Builds the joint from means and a symmetric positive-definite
    /// covariance matrix (given as rows).
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if the covariance is not
    ///   `d × d` for `d = means.len()`.
    /// - [`StatsError::InvalidParameter`] for an empty mean vector, a
    ///   non-finite entry, an asymmetric covariance, or one that is not
    ///   positive definite (Cholesky breakdown).
    pub fn new(means: Vec<f64>, covariance: Vec<Vec<f64>>) -> Result<Self, StatsError> {
        let d = means.len();
        if d == 0 {
            return Err(StatsError::InvalidParameter {
                name: "means",
                reason: "joint normal needs at least one dimension".into(),
            });
        }
        crate::check_finite_slice("means", &means)?;
        if covariance.len() != d || covariance.iter().any(|row| row.len() != d) {
            return Err(StatsError::DimensionMismatch {
                expected: d,
                got: covariance.len(),
            });
        }
        for (i, row) in covariance.iter().enumerate() {
            crate::check_finite_slice("covariance", row)?;
            for (j, &v) in row.iter().enumerate() {
                if (v - covariance[j][i]).abs() > 1e-9 {
                    return Err(StatsError::InvalidParameter {
                        name: "covariance",
                        reason: format!("asymmetric at ({i}, {j}): {v} vs {}", covariance[j][i]),
                    });
                }
            }
        }
        // In-place Cholesky: covariance = L·Lᵀ.
        let mut chol = vec![vec![0.0; d]; d];
        for i in 0..d {
            for j in 0..=i {
                let mut sum = covariance[i][j];
                sum -= chol[i]
                    .iter()
                    .zip(&chol[j])
                    .take(j)
                    .map(|(a, b)| a * b)
                    .sum::<f64>();
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::InvalidParameter {
                            name: "covariance",
                            reason: format!("not positive definite (pivot {sum} at {i})"),
                        });
                    }
                    chol[i][j] = sum.sqrt();
                } else {
                    chol[i][j] = sum / chol[j][j];
                }
            }
        }
        Ok(JointNormal { means, chol })
    }

    /// Independent standard-normal factors (identity covariance).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for `dim == 0`.
    pub fn standard(dim: usize) -> Result<Self, StatsError> {
        let mut cov = vec![vec![0.0; dim]; dim];
        for (i, row) in cov.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Self::new(vec![0.0; dim], cov)
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Draws one correlated vector: `means + L·z` for standard-normal `z`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let d = self.dim();
        let z: Vec<f64> = (0..d)
            .map(|_| MultivariateNormal::standard_normal(rng))
            .collect();
        (0..d)
            .map(|i| {
                self.means[i]
                    + self.chol[i][..=i]
                        .iter()
                        .zip(&z)
                        .map(|(l, zk)| l * zk)
                        .sum::<f64>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_stats(d: &Dist, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64;
        (m, v)
    }

    #[test]
    fn normal_moments_match_samples() {
        let d = Dist::normal(2.0, 0.5);
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.variance(), 0.25);
        let (m, v) = sample_stats(&d, 20_000, 1);
        assert!((m - 2.0).abs() < 0.02, "mean {m}");
        assert!((v - 0.25).abs() < 0.02, "var {v}");
    }

    #[test]
    fn uniform_moments() {
        let d = Dist::uniform(-1.0, 3.0);
        assert_eq!(d.mean(), 1.0);
        assert!((d.variance() - 4.0 / 3.0).abs() < 1e-12);
        let (m, _) = sample_stats(&d, 20_000, 2);
        assert!((m - 1.0).abs() < 0.05);
    }

    #[test]
    fn point_is_degenerate() {
        let d = Dist::point(7.0);
        assert_eq!(d.mean(), 7.0);
        assert_eq!(d.variance(), 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 7.0);
    }

    #[test]
    fn shift_and_scale_compose() {
        let d = Dist::normal(1.0, 2.0).shift(3.0).scale(0.5);
        assert_eq!(d.mean(), 2.0);
        assert_eq!(d.variance(), 1.0);
        // Negative scale flips the mean but keeps sd positive.
        let flipped = Dist::normal(1.0, 2.0).scale(-1.0);
        assert_eq!(flipped.mean(), -1.0);
        assert_eq!(flipped.variance(), 4.0);
        // Uniform bounds stay ordered under negative scale.
        let u = Dist::uniform(1.0, 2.0).scale(-1.0);
        assert_eq!(u, Dist::uniform(-2.0, -1.0));
        // Combinators distribute over mixtures.
        let mix = Dist::mixture(Dist::point(0.0), Dist::point(1.0), 0.5)
            .unwrap()
            .shift(1.0);
        assert_eq!(mix.mean(), 1.5);
    }

    #[test]
    fn mixture_moments_follow_total_variance() {
        let d = Dist::mixture(Dist::normal(-1.0, 0.1), Dist::normal(1.0, 0.1), 0.5).unwrap();
        assert_eq!(d.mean(), 0.0);
        // Var = E[var] + var[mean] = 0.01 + 1.0.
        assert!((d.variance() - 1.01).abs() < 1e-12);
        let (m, v) = sample_stats(&d, 20_000, 4);
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.01).abs() < 0.05, "var {v}");
        assert!(Dist::mixture(Dist::point(0.0), Dist::point(1.0), 1.5).is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Dist::mixture(Dist::normal(0.0, 1.0), Dist::uniform(0.0, 1.0), 0.3).unwrap();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..64).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..64).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn joint_normal_correlation_is_realized() {
        let joint =
            JointNormal::new(vec![1.0, -1.0], vec![vec![1.0, 0.8], vec![0.8, 1.0]]).unwrap();
        assert_eq!(joint.dim(), 2);
        let mut rng = StdRng::seed_from_u64(6);
        let draws: Vec<Vec<f64>> = (0..20_000).map(|_| joint.sample(&mut rng)).collect();
        let mx = draws.iter().map(|d| d[0]).sum::<f64>() / draws.len() as f64;
        let my = draws.iter().map(|d| d[1]).sum::<f64>() / draws.len() as f64;
        assert!((mx - 1.0).abs() < 0.03);
        assert!((my + 1.0).abs() < 0.03);
        let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
        for d in &draws {
            let (dx, dy) = (d[0] - mx, d[1] - my);
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        let corr = sxy / (sxx * syy).sqrt();
        assert!((corr - 0.8).abs() < 0.02, "corr {corr}");
    }

    #[test]
    fn joint_normal_rejects_bad_covariance() {
        assert!(JointNormal::new(vec![], vec![]).is_err());
        // Wrong shape.
        assert!(JointNormal::new(vec![0.0, 0.0], vec![vec![1.0]]).is_err());
        // Asymmetric.
        assert!(JointNormal::new(vec![0.0, 0.0], vec![vec![1.0, 0.5], vec![0.1, 1.0]]).is_err());
        // Not positive definite (correlation > 1).
        assert!(JointNormal::new(vec![0.0, 0.0], vec![vec![1.0, 1.5], vec![1.5, 1.0]]).is_err());
        // NaN.
        assert!(JointNormal::new(vec![f64::NAN], vec![vec![1.0]]).is_err());
    }

    #[test]
    fn standard_joint_is_uncorrelated_identity() {
        let joint = JointNormal::standard(3).unwrap();
        assert_eq!(joint.dim(), 3);
        let mut rng = StdRng::seed_from_u64(8);
        let d = joint.sample(&mut rng);
        assert_eq!(d.len(), 3);
        assert!(JointNormal::standard(0).is_err());
    }
}
