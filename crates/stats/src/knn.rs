//! Distance-weighted k-nearest-neighbor regression — an ablation baseline
//! for MARS.
//!
//! A purely local model: predicts the inverse-distance-weighted mean of the
//! `k` nearest training targets. It needs no training beyond storing the
//! data, making it a useful "no structural assumptions" contrast to MARS and
//! polynomial ridge in the `ablation_regressor` bench.

use sidefp_linalg::{vecops, Matrix};

use crate::state::{KnnState, RegressorState};
use crate::{Regressor, StatsError};

/// Configuration for [`KnnRegressor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnConfig {
    /// Number of neighbors (≥ 1, clamped to the training size at fit time).
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// Distance-weighted k-NN regressor.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::knn::{KnnConfig, KnnRegressor};
/// use sidefp_stats::Regressor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]])?;
/// let y = vec![0.0, 1.0, 2.0, 3.0];
/// let model = KnnRegressor::fit(&x, &y, &KnnConfig { k: 2 })?;
/// let pred = model.predict(&[1.5])?;
/// assert!((pred - 1.5).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    x: Matrix,
    y: Vec<f64>,
    k: usize,
}

impl KnnRegressor {
    /// Stores the training data.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if `y.len() != x.nrows()`.
    /// - [`StatsError::InsufficientData`] for an empty training set.
    /// - [`StatsError::InvalidParameter`] for `k = 0`.
    pub fn fit(x: &Matrix, y: &[f64], config: &KnnConfig) -> Result<Self, StatsError> {
        if y.len() != x.nrows() {
            return Err(StatsError::DimensionMismatch {
                expected: x.nrows(),
                got: y.len(),
            });
        }
        if x.nrows() == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }
        if config.k == 0 {
            return Err(StatsError::InvalidParameter {
                name: "k",
                reason: "must be at least 1".into(),
            });
        }
        Ok(KnnRegressor {
            x: x.clone(),
            y: y.to_vec(),
            k: config.k.min(x.nrows()),
        })
    }

    /// The effective `k` (after clamping to the training size).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exports the fitted model as a plain-data [`KnnState`] snapshot;
    /// [`KnnRegressor::from_state`] reconstructs a bit-identical predictor.
    pub fn export_state(&self) -> KnnState {
        KnnState {
            x: self.x.clone(),
            y: self.y.clone(),
            k: self.k,
        }
    }

    /// Reconstructs a fitted model from an exported [`KnnState`].
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when target and sample
    /// counts disagree, `k` is outside `[1, nrows]`, or a value is
    /// non-finite.
    pub fn from_state(state: KnnState) -> Result<Self, StatsError> {
        if state.x.nrows() == 0 || state.x.ncols() == 0 {
            return Err(StatsError::InvalidParameter {
                name: "knn.x",
                reason: "training matrix must be non-empty".into(),
            });
        }
        if state.y.len() != state.x.nrows() {
            return Err(StatsError::InvalidParameter {
                name: "knn.y",
                reason: format!("{} targets vs {} samples", state.y.len(), state.x.nrows()),
            });
        }
        if state.k == 0 || state.k > state.x.nrows() {
            return Err(StatsError::InvalidParameter {
                name: "knn.k",
                reason: format!("k = {} outside [1, {}]", state.k, state.x.nrows()),
            });
        }
        crate::state::require_finite("knn.x", state.x.as_slice())?;
        crate::state::require_finite("knn.y", &state.y)?;
        Ok(KnnRegressor {
            x: state.x,
            y: state.y,
            k: state.k,
        })
    }
}

impl Regressor for KnnRegressor {
    fn predict(&self, x: &[f64]) -> Result<f64, StatsError> {
        if x.len() != self.x.ncols() {
            return Err(StatsError::DimensionMismatch {
                expected: self.x.ncols(),
                got: x.len(),
            });
        }
        // Collect (distance, target), take the k smallest.
        let mut pairs: Vec<(f64, f64)> = self
            .x
            .rows_iter()
            .zip(&self.y)
            .map(|(row, &t)| (vecops::distance(row, x), t))
            .collect();
        // NaN distances (a NaN query coordinate) order last under total_cmp
        // instead of panicking, so the k nearest finite neighbours still win.
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let nearest = &pairs[..self.k];

        // Exact hit → return that target (infinite weight).
        if nearest[0].0 == 0.0 {
            return Ok(nearest[0].1);
        }
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for (d, t) in nearest {
            let w = 1.0 / d;
            wsum += w;
            acc += w * t;
        }
        Ok(acc / wsum)
    }

    fn input_dim(&self) -> usize {
        self.x.ncols()
    }

    fn export_state(&self) -> Option<RegressorState> {
        Some(RegressorState::Knn(KnnRegressor::export_state(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;

    #[test]
    fn exact_training_point_returns_target() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let y = vec![10.0, 20.0, 30.0];
        let m = KnnRegressor::fit(&x, &y, &KnnConfig { k: 3 }).unwrap();
        assert_eq!(m.predict(&[1.0]).unwrap(), 20.0);
    }

    #[test]
    fn interpolates_between_neighbors() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let y = vec![0.0, 10.0];
        let m = KnnRegressor::fit(&x, &y, &KnnConfig { k: 2 }).unwrap();
        let p = m.predict(&[0.5]).unwrap();
        assert!((p - 5.0).abs() < 1e-9);
        // Asymmetric query weights the closer neighbor more.
        let p = m.predict(&[0.25]).unwrap();
        assert!(p < 5.0 && p > 0.0);
    }

    #[test]
    fn k_clamped_to_training_size() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let m = KnnRegressor::fit(&x, &[1.0, 2.0], &KnnConfig { k: 100 }).unwrap();
        assert_eq!(m.k(), 2);
    }

    #[test]
    fn fits_smooth_function_reasonably() {
        let x = Matrix::from_fn(50, 1, |i, _| i as f64 / 10.0);
        let y: Vec<f64> = x.col(0).iter().map(|v| v.sin()).collect();
        let m = KnnRegressor::fit(&x, &y, &KnnConfig::default()).unwrap();
        let preds: Vec<f64> = (0..40)
            .map(|i| m.predict(&[0.25 + i as f64 / 10.0]).unwrap())
            .collect();
        let truth: Vec<f64> = (0..40).map(|i| (0.25 + i as f64 / 10.0).sin()).collect();
        assert!(descriptive::rmse(&truth, &preds).unwrap() < 0.1);
    }

    #[test]
    fn rejects_bad_input() {
        let x = Matrix::from_rows(&[&[0.0]]).unwrap();
        assert!(KnnRegressor::fit(&x, &[1.0, 2.0], &KnnConfig::default()).is_err());
        assert!(KnnRegressor::fit(&x, &[1.0], &KnnConfig { k: 0 }).is_err());
        let m = KnnRegressor::fit(&x, &[1.0], &KnnConfig::default()).unwrap();
        assert!(m.predict(&[0.0, 1.0]).is_err());
        assert_eq!(m.input_dim(), 1);
    }

    #[test]
    fn predict_does_not_panic_on_nan_query() {
        // Regression: the distance sort used partial_cmp().expect("finite
        // distances") and panicked when a query coordinate was NaN. The
        // training set is validated finite at fit time, so NaN distances can
        // only come from the query; they now order last without panicking.
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let m = KnnRegressor::fit(&x, &[0.0, 1.0, 2.0], &KnnConfig { k: 2 }).unwrap();
        let p = m.predict(&[f64::NAN]).unwrap();
        assert!(p.is_nan(), "NaN query propagates as NaN, got {p}");
        // A finite query on the same model is unaffected.
        assert!(m.predict(&[1.0]).unwrap().is_finite());
    }
}
