use rand::Rng;
use sidefp_linalg::{Cholesky, Matrix};

use crate::StatsError;

/// Draws a single standard normal variate via the Box–Muller transform.
///
/// The `rand` crate deliberately ships no distributions beyond uniform, so
/// the workspace carries its own Gaussian sampler.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = sidefp_stats::MultivariateNormal::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
fn box_muller<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging the uniform away from zero.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A multivariate normal distribution `N(μ, Σ)` supporting sampling.
///
/// Sampling draws i.i.d. standard normals (Box–Muller) and correlates them
/// through the Cholesky factor of `Σ`. This is the stochastic engine behind
/// the process-variation model: correlated transistor parameters across a
/// die are exactly correlated Gaussians.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::MultivariateNormal;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cov = Matrix::from_rows(&[&[1.0, 0.8], &[0.8, 1.0]])?;
/// let mvn = MultivariateNormal::new(vec![0.0, 0.0], &cov)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = mvn.sample(&mut rng);
/// assert_eq!(x.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol: Cholesky,
}

impl MultivariateNormal {
    /// Constructs the distribution from a mean vector and covariance matrix.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if `mean.len() != covariance.nrows()`.
    /// - [`StatsError::Linalg`] if the covariance is not symmetric positive
    ///   definite. Rounding-level indefiniteness (a sample covariance that
    ///   lost definiteness to floating-point noise) is rescued by a bounded
    ///   ridge escalation, recorded in the solver-health diagnostics.
    pub fn new(mean: Vec<f64>, covariance: &Matrix) -> Result<Self, StatsError> {
        Self::new_observed(mean, covariance, &sidefp_obs::RunContext::new())
    }

    /// [`MultivariateNormal::new`] reporting any ridge-escalation retries
    /// into `obs` instead of a throwaway context.
    ///
    /// # Errors
    ///
    /// Same as [`MultivariateNormal::new`].
    pub fn new_observed(
        mean: Vec<f64>,
        covariance: &Matrix,
        obs: &sidefp_obs::RunContext,
    ) -> Result<Self, StatsError> {
        if mean.len() != covariance.nrows() {
            return Err(StatsError::DimensionMismatch {
                expected: covariance.nrows(),
                got: mean.len(),
            });
        }
        let rec =
            sidefp_linalg::cholesky_ridged(covariance, &sidefp_linalg::Escalation::default())?;
        if rec.retries > 0 {
            obs.record_cholesky_retries(rec.retries);
            obs.trace_rescue("cholesky", "ridge_retry", rec.retries);
        }
        Ok(MultivariateNormal {
            mean,
            chol: rec.value,
        })
    }

    /// Convenience constructor for independent coordinates with the given
    /// standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if any standard deviation is
    /// not strictly positive.
    pub fn independent(mean: Vec<f64>, stds: &[f64]) -> Result<Self, StatsError> {
        if stds.len() != mean.len() {
            return Err(StatsError::DimensionMismatch {
                expected: mean.len(),
                got: stds.len(),
            });
        }
        if let Some(bad) = stds.iter().find(|s| **s <= 0.0) {
            return Err(StatsError::InvalidParameter {
                name: "stds",
                reason: format!("standard deviations must be positive, got {bad}"),
            });
        }
        let n = stds.len();
        let cov = Matrix::from_fn(n, n, |i, j| if i == j { stds[i] * stds[i] } else { 0.0 });
        MultivariateNormal::new(mean, &cov)
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Draws one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let z: Vec<f64> = (0..self.dim()).map(|_| box_muller(rng)).collect();
        let correlated = self
            .chol
            .apply_factor(&z)
            .expect("factor dimension matches sample dimension");
        correlated
            .iter()
            .zip(&self.mean)
            .map(|(c, m)| c + m)
            .collect()
    }

    /// Draws `n` samples as rows of a matrix.
    pub fn sample_matrix<R: Rng>(&self, rng: &mut R, n: usize) -> Matrix {
        let mut out = Matrix::zeros(n, self.dim());
        for i in 0..n {
            let s = self.sample(rng);
            out.row_mut(i).copy_from_slice(&s);
        }
        out
    }

    /// Draws a single standard normal variate (`N(0, 1)`).
    ///
    /// Exposed so that other crates can reuse the Box–Muller sampler
    /// without constructing a distribution object.
    pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
        box_muller(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| MultivariateNormal::standard_normal(&mut rng))
            .collect();
        let m = descriptive::mean(&samples).unwrap();
        let v = descriptive::variance(&samples).unwrap();
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "variance {v}");
    }

    #[test]
    fn correlated_samples_have_requested_covariance() {
        let cov = Matrix::from_rows(&[&[2.0, 1.2], &[1.2, 1.0]]).unwrap();
        let mvn = MultivariateNormal::new(vec![1.0, -1.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = mvn.sample_matrix(&mut rng, 20_000);
        let means = samples.column_means();
        assert!((means[0] - 1.0).abs() < 0.05);
        assert!((means[1] + 1.0).abs() < 0.05);
        let c = samples.covariance().unwrap();
        assert!((c[(0, 0)] - 2.0).abs() < 0.1);
        assert!((c[(0, 1)] - 1.2).abs() < 0.1);
        assert!((c[(1, 1)] - 1.0).abs() < 0.05);
    }

    #[test]
    fn independent_constructor() {
        let mvn = MultivariateNormal::independent(vec![0.0, 10.0], &[1.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = mvn.sample_matrix(&mut rng, 10_000);
        let col1 = samples.col(1);
        assert!((descriptive::mean(&col1).unwrap() - 10.0).abs() < 0.1);
        assert!((descriptive::std_dev(&col1).unwrap() - 2.0).abs() < 0.1);
    }

    #[test]
    fn rejects_bad_input() {
        let cov = Matrix::identity(2);
        assert!(MultivariateNormal::new(vec![0.0], &cov).is_err());
        assert!(MultivariateNormal::independent(vec![0.0], &[0.0]).is_err());
        assert!(MultivariateNormal::independent(vec![0.0], &[1.0, 1.0]).is_err());
        let not_spd = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(MultivariateNormal::new(vec![0.0, 0.0], &not_spd).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mvn = MultivariateNormal::independent(vec![0.0], &[1.0]).unwrap();
        let a = mvn.sample(&mut StdRng::seed_from_u64(5));
        let b = mvn.sample(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn accessors() {
        let mvn = MultivariateNormal::independent(vec![1.0, 2.0], &[1.0, 1.0]).unwrap();
        assert_eq!(mvn.dim(), 2);
        assert_eq!(mvn.mean(), &[1.0, 2.0]);
    }
}
