use sidefp_linalg::Matrix;

use crate::StatsError;

/// Principal Component Analysis via eigendecomposition of the sample
/// covariance matrix.
///
/// The paper (Fig. 4) projects each 6-dimensional fingerprint dataset onto
/// its top three principal components for visualization; [`Pca`] provides
/// exactly that projection plus explained-variance diagnostics.
///
/// # Example
///
/// ```
/// use sidefp_linalg::Matrix;
/// use sidefp_stats::Pca;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Data varying only along the diagonal of the plane.
/// let data = Matrix::from_rows(&[
///     &[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0],
/// ])?;
/// let pca = Pca::fit(&data)?;
/// // One dominant component explains all variance.
/// assert!(pca.explained_variance_ratio()[0] > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// Columns are principal directions, descending eigenvalue order.
    components: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on the rows of `data`.
    ///
    /// # Errors
    ///
    /// - [`StatsError::InsufficientData`] for fewer than two rows.
    /// - [`StatsError::Linalg`] if the eigendecomposition fails.
    pub fn fit(data: &Matrix) -> Result<Self, StatsError> {
        if data.nrows() < 2 {
            return Err(StatsError::InsufficientData {
                needed: 2,
                got: data.nrows(),
            });
        }
        let mean = data.column_means();
        let cov = data.covariance()?;
        let eig = cov.symmetric_eigen()?;
        Ok(Pca {
            mean,
            components: eig.eigenvectors().clone(),
            eigenvalues: eig.eigenvalues().to_vec(),
        })
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Per-component variances (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Mean of the training data.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Fraction of total variance carried by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().map(|v| v.max(0.0)).sum();
        if total <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues
            .iter()
            .map(|v| v.max(0.0) / total)
            .collect()
    }

    /// Projects rows of `data` onto the top `k` components.
    ///
    /// # Errors
    ///
    /// - [`StatsError::DimensionMismatch`] if the column count differs.
    /// - [`StatsError::InvalidParameter`] if `k` is zero or exceeds the
    ///   dimension.
    pub fn project(&self, data: &Matrix, k: usize) -> Result<Matrix, StatsError> {
        if data.ncols() != self.dim() {
            return Err(StatsError::DimensionMismatch {
                expected: self.dim(),
                got: data.ncols(),
            });
        }
        if k == 0 || k > self.dim() {
            return Err(StatsError::InvalidParameter {
                name: "k",
                reason: format!("must be in 1..={}, got {k}", self.dim()),
            });
        }
        let mut out = Matrix::zeros(data.nrows(), k);
        for (i, row) in data.rows_iter().enumerate() {
            for j in 0..k {
                let mut dot = 0.0;
                for (d, v) in row.iter().enumerate() {
                    dot += (v - self.mean[d]) * self.components[(d, j)];
                }
                out[(i, j)] = dot;
            }
        }
        Ok(out)
    }

    /// Projects a single sample onto the top `k` components.
    ///
    /// # Errors
    ///
    /// Same as [`Pca::project`].
    pub fn project_sample(&self, x: &[f64], k: usize) -> Result<Vec<f64>, StatsError> {
        let m = Matrix::from_rows(&[x])?;
        Ok(self.project(&m, k)?.row(0).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MultivariateNormal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_dominant_direction() {
        // Strongly elongated Gaussian along (1, 1)/√2.
        let cov = Matrix::from_rows(&[&[5.0, 4.9], &[4.9, 5.0]]).unwrap();
        let mvn = MultivariateNormal::new(vec![0.0, 0.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let data = mvn.sample_matrix(&mut rng, 2000);
        let pca = Pca::fit(&data).unwrap();
        let pc1 = pca.components_column(0);
        let aligned = (pc1[0] * pc1[1]).signum();
        assert!(aligned > 0.0, "PC1 {pc1:?} not along the diagonal");
        assert!((pc1[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let data = random_blob(100, 3, 2);
        let pca = Pca::fit(&data).unwrap();
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Ratios are sorted descending.
        let r = pca.explained_variance_ratio();
        assert!(r[0] >= r[1] && r[1] >= r[2]);
    }

    #[test]
    fn projection_shape_and_centering() {
        let data = random_blob(50, 4, 3);
        let pca = Pca::fit(&data).unwrap();
        let proj = pca.project(&data, 2).unwrap();
        assert_eq!(proj.shape(), (50, 2));
        // Projections of training data are centered.
        let means = proj.column_means();
        assert!(means[0].abs() < 1e-9 && means[1].abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_variance_order() {
        let data = random_blob(300, 3, 4);
        let pca = Pca::fit(&data).unwrap();
        let proj = pca.project(&data, 3).unwrap();
        let var: Vec<f64> = (0..3)
            .map(|j| crate::descriptive::variance(&proj.col(j)).unwrap())
            .collect();
        assert!(var[0] >= var[1] && var[1] >= var[2]);
        // Projected variances equal eigenvalues.
        for (v, e) in var.iter().zip(pca.eigenvalues()) {
            assert!((v - e).abs() < 1e-6 * e.max(1.0), "var {v} vs eig {e}");
        }
    }

    #[test]
    fn project_sample_matches_matrix_projection() {
        let data = random_blob(40, 3, 5);
        let pca = Pca::fit(&data).unwrap();
        let proj = pca.project(&data, 3).unwrap();
        let single = pca.project_sample(data.row(7), 3).unwrap();
        for j in 0..3 {
            assert!((proj[(7, j)] - single[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn error_paths() {
        let data = random_blob(20, 2, 6);
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.project(&data, 0).is_err());
        assert!(pca.project(&data, 3).is_err());
        assert!(pca.project(&Matrix::zeros(5, 3), 1).is_err());
        assert!(Pca::fit(&Matrix::zeros(1, 2)).is_err());
    }

    fn random_blob(n: usize, d: usize, seed: u64) -> Matrix {
        let stds: Vec<f64> = (0..d).map(|i| 1.0 + i as f64).collect();
        let mvn = MultivariateNormal::independent(vec![0.0; d], &stds).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        // Shuffle the std order so eigen sorting is exercised: make the last
        // dimension the largest → PCA must reorder.
        mvn.sample_matrix(&mut rng, n)
    }

    impl Pca {
        fn components_column(&self, k: usize) -> Vec<f64> {
            self.components.col(k)
        }
    }
}
