use std::fmt;

/// Ground-truth / predicted label of a device under Trojan test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionLabel {
    /// Device is (or is predicted) free of hardware Trojans.
    TrojanFree,
    /// Device is (or is predicted) Trojan-infested.
    TrojanInfested,
}

impl fmt::Display for DetectionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectionLabel::TrojanFree => write!(f, "Trojan-free"),
            DetectionLabel::TrojanInfested => write!(f, "Trojan-infested"),
        }
    }
}

/// Confusion counts using the **paper's** (inverted) FP/FN conventions:
///
/// - `FP` = Trojan-infested devices predicted Trojan-free (**missed
///   Trojans**, Eq. 1),
/// - `FN` = Trojan-free devices predicted Trojan-infested (**false alarms**,
///   Eq. 2).
///
/// The struct tracks the class totals so results print in the paper's
/// `x/80`, `y/40` style.
///
/// # Example
///
/// ```
/// use sidefp_stats::{ConfusionCounts, DetectionLabel};
///
/// let mut counts = ConfusionCounts::new();
/// counts.record(DetectionLabel::TrojanInfested, DetectionLabel::TrojanFree);
/// counts.record(DetectionLabel::TrojanFree, DetectionLabel::TrojanFree);
/// assert_eq!(counts.false_positives(), 1); // one missed Trojan
/// assert_eq!(counts.false_negatives(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    missed_trojans: usize,
    false_alarms: usize,
    infested_total: usize,
    free_total: usize,
}

impl ConfusionCounts {
    /// Creates an empty tally.
    pub fn new() -> Self {
        ConfusionCounts::default()
    }

    /// Records one device's ground truth and prediction.
    pub fn record(&mut self, actual: DetectionLabel, predicted: DetectionLabel) {
        match actual {
            DetectionLabel::TrojanInfested => {
                self.infested_total += 1;
                if predicted == DetectionLabel::TrojanFree {
                    self.missed_trojans += 1;
                }
            }
            DetectionLabel::TrojanFree => {
                self.free_total += 1;
                if predicted == DetectionLabel::TrojanInfested {
                    self.false_alarms += 1;
                }
            }
        }
    }

    /// Tallies a batch of (actual, predicted) pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (DetectionLabel, DetectionLabel)>,
    {
        let mut counts = ConfusionCounts::new();
        for (actual, predicted) in pairs {
            counts.record(actual, predicted);
        }
        counts
    }

    /// Missed Trojans (the paper's FP, Eq. 1).
    pub fn false_positives(&self) -> usize {
        self.missed_trojans
    }

    /// False alarms on Trojan-free devices (the paper's FN, Eq. 2).
    pub fn false_negatives(&self) -> usize {
        self.false_alarms
    }

    /// Number of Trojan-infested devices tallied.
    pub fn infested_total(&self) -> usize {
        self.infested_total
    }

    /// Number of Trojan-free devices tallied.
    pub fn free_total(&self) -> usize {
        self.free_total
    }

    /// Missed-Trojan rate in `[0, 1]`; `0` when no infested devices seen.
    pub fn false_positive_rate(&self) -> f64 {
        if self.infested_total == 0 {
            0.0
        } else {
            self.missed_trojans as f64 / self.infested_total as f64
        }
    }

    /// False-alarm rate in `[0, 1]`; `0` when no Trojan-free devices seen.
    pub fn false_negative_rate(&self) -> f64 {
        if self.free_total == 0 {
            0.0
        } else {
            self.false_alarms as f64 / self.free_total as f64
        }
    }

    /// Overall accuracy across both classes.
    pub fn accuracy(&self) -> f64 {
        let total = self.infested_total + self.free_total;
        if total == 0 {
            return 0.0;
        }
        let correct = total - self.missed_trojans - self.false_alarms;
        correct as f64 / total as f64
    }
}

impl fmt::Display for ConfusionCounts {
    /// Prints in the paper's Table-1 style: `FP a/b  FN c/d`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FP {}/{}  FN {}/{}",
            self.missed_trojans, self.infested_total, self.false_alarms, self.free_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DetectionLabel::{TrojanFree as Free, TrojanInfested as Infested};

    #[test]
    fn paper_convention_fp_counts_missed_trojans() {
        let counts = ConfusionCounts::from_pairs([
            (Infested, Free),     // missed Trojan → FP
            (Infested, Infested), // caught
            (Free, Infested),     // false alarm → FN
            (Free, Free),         // correct
        ]);
        assert_eq!(counts.false_positives(), 1);
        assert_eq!(counts.false_negatives(), 1);
        assert_eq!(counts.infested_total(), 2);
        assert_eq!(counts.free_total(), 2);
        assert_eq!(counts.accuracy(), 0.5);
    }

    #[test]
    fn rates() {
        let counts = ConfusionCounts::from_pairs([
            (Infested, Free),
            (Infested, Free),
            (Infested, Infested),
            (Infested, Infested),
            (Free, Free),
        ]);
        assert!((counts.false_positive_rate() - 0.5).abs() < 1e-12);
        assert_eq!(counts.false_negative_rate(), 0.0);
    }

    #[test]
    fn empty_counts_are_zero() {
        let counts = ConfusionCounts::new();
        assert_eq!(counts.false_positive_rate(), 0.0);
        assert_eq!(counts.false_negative_rate(), 0.0);
        assert_eq!(counts.accuracy(), 0.0);
    }

    #[test]
    fn display_matches_table_style() {
        let counts = ConfusionCounts::from_pairs([(Infested, Infested), (Free, Infested)]);
        assert_eq!(counts.to_string(), "FP 0/1  FN 1/1");
    }

    #[test]
    fn labels_display() {
        assert_eq!(Free.to_string(), "Trojan-free");
        assert_eq!(Infested.to_string(), "Trojan-infested");
    }
}
