//! ROC analysis over detector scores.
//!
//! FP/FN counts (Table 1) evaluate one operating point of a boundary; the
//! ROC curve evaluates the whole decision function. Scores follow the
//! trusted-region convention: **higher = more trusted**, so a positive
//! (Trojan-free) device should out-score an infested one.

use crate::{DetectionLabel, StatsError};

/// One point of the ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Decision threshold this point corresponds to.
    pub threshold: f64,
    /// True-positive rate: Trojan-free devices accepted as trusted.
    pub true_positive_rate: f64,
    /// False-positive rate: Trojan-infested devices accepted as trusted
    /// (the paper's FP, normalized).
    pub false_positive_rate: f64,
}

/// A ROC curve over (score, label) pairs.
///
/// # Example
///
/// ```
/// use sidefp_stats::roc::RocCurve;
/// use sidefp_stats::DetectionLabel::{TrojanFree, TrojanInfested};
///
/// # fn main() -> Result<(), sidefp_stats::StatsError> {
/// // A perfect scorer: every free device out-scores every infested one.
/// let scores = [(1.0, TrojanFree), (0.9, TrojanFree),
///               (-0.5, TrojanInfested), (-1.0, TrojanInfested)];
/// let roc = RocCurve::from_scores(scores)?;
/// assert_eq!(roc.auc(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f64,
}

impl RocCurve {
    /// Builds the curve from (score, ground-truth) pairs.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] unless both classes are
    /// present, or [`StatsError::DegenerateData`] for non-finite scores.
    pub fn from_scores<I>(scores: I) -> Result<Self, StatsError>
    where
        I: IntoIterator<Item = (f64, DetectionLabel)>,
    {
        let mut pairs: Vec<(f64, DetectionLabel)> = scores.into_iter().collect();
        if pairs.iter().any(|(s, _)| !s.is_finite()) {
            return Err(StatsError::DegenerateData(
                "ROC scores must be finite".into(),
            ));
        }
        let positives = pairs
            .iter()
            .filter(|(_, l)| *l == DetectionLabel::TrojanFree)
            .count();
        let negatives = pairs.len() - positives;
        if positives == 0 || negatives == 0 {
            return Err(StatsError::InsufficientData { needed: 1, got: 0 });
        }

        // Sweep thresholds from high to low: start at (0, 0), end at (1, 1).
        // Scores are validated finite above; total_cmp keeps the sort
        // panic-free even if that invariant is ever relaxed.
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut points = Vec::with_capacity(pairs.len() + 1);
        let mut tp = 0usize;
        let mut fp = 0usize;
        points.push(RocPoint {
            threshold: f64::INFINITY,
            true_positive_rate: 0.0,
            false_positive_rate: 0.0,
        });
        let mut i = 0;
        while i < pairs.len() {
            // Process ties together so the curve is well-defined.
            let threshold = pairs[i].0;
            while i < pairs.len() && pairs[i].0 == threshold {
                match pairs[i].1 {
                    DetectionLabel::TrojanFree => tp += 1,
                    DetectionLabel::TrojanInfested => fp += 1,
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                true_positive_rate: tp as f64 / positives as f64,
                false_positive_rate: fp as f64 / negatives as f64,
            });
        }

        // Trapezoidal AUC.
        let mut auc = 0.0;
        for w in points.windows(2) {
            let dx = w[1].false_positive_rate - w[0].false_positive_rate;
            auc += dx * (w[0].true_positive_rate + w[1].true_positive_rate) / 2.0;
        }

        Ok(RocCurve { points, auc })
    }

    /// The curve's points, from threshold `+∞` downward.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve: `P(score_free > score_infested)` (ties count
    /// half). 1.0 = perfect separation, 0.5 = chance.
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// True-positive rate achievable at zero false positives — the paper's
    /// operating regime (never accept a Trojan).
    pub fn tpr_at_zero_fpr(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.false_positive_rate == 0.0)
            .map(|p| p.true_positive_rate)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use DetectionLabel::{TrojanFree as Free, TrojanInfested as Infested};

    #[test]
    fn perfect_separation() {
        let roc =
            RocCurve::from_scores([(2.0, Free), (1.0, Free), (-1.0, Infested), (-2.0, Infested)])
                .unwrap();
        assert_eq!(roc.auc(), 1.0);
        assert_eq!(roc.tpr_at_zero_fpr(), 1.0);
        assert_eq!(roc.points().first().unwrap().true_positive_rate, 0.0);
        assert_eq!(roc.points().last().unwrap().true_positive_rate, 1.0);
    }

    #[test]
    fn inverted_scorer_has_zero_auc() {
        let roc =
            RocCurve::from_scores([(-1.0, Free), (-2.0, Free), (1.0, Infested), (2.0, Infested)])
                .unwrap();
        assert_eq!(roc.auc(), 0.0);
        assert_eq!(roc.tpr_at_zero_fpr(), 0.0);
    }

    #[test]
    fn interleaved_scores() {
        // free at 3 and 1, infested at 2 and 0: one inversion out of four
        // pairs → AUC = 3/4.
        let roc =
            RocCurve::from_scores([(3.0, Free), (2.0, Infested), (1.0, Free), (0.0, Infested)])
                .unwrap();
        assert!((roc.auc() - 0.75).abs() < 1e-12);
        assert_eq!(roc.tpr_at_zero_fpr(), 0.5);
    }

    #[test]
    fn ties_count_half() {
        let roc = RocCurve::from_scores([(1.0, Free), (1.0, Infested)]).unwrap();
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_curve() {
        let roc = RocCurve::from_scores([
            (0.9, Free),
            (0.8, Infested),
            (0.7, Free),
            (0.4, Infested),
            (0.2, Free),
        ])
        .unwrap();
        for w in roc.points().windows(2) {
            assert!(w[1].true_positive_rate >= w[0].true_positive_rate);
            assert!(w[1].false_positive_rate >= w[0].false_positive_rate);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(RocCurve::from_scores([(1.0, Free)]).is_err());
        assert!(RocCurve::from_scores([(1.0, Infested)]).is_err());
        assert!(RocCurve::from_scores([(f64::NAN, Free), (0.0, Infested)]).is_err());
        assert!(RocCurve::from_scores(std::iter::empty()).is_err());
    }

    #[test]
    fn nan_scores_return_typed_error_not_panic() {
        // Regression: the threshold-sweep sort previously relied on
        // partial_cmp().expect("finite scores"). NaN input must surface the
        // typed DegenerateData error from pre-validation — and even if the
        // validation were bypassed, total_cmp keeps the sort panic-free.
        let err = RocCurve::from_scores([
            (0.4, Free),
            (f64::NAN, Infested),
            (0.6, Free),
            (0.1, Infested),
        ])
        .unwrap_err();
        assert!(matches!(err, StatsError::DegenerateData(_)), "{err:?}");
    }
}
