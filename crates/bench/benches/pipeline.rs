//! Criterion benchmarks for the end-to-end detection pipeline and its
//! stages — regenerating Table 1 is itself the workload of interest.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sidefp_chip::device::WirelessCryptoIc;
use sidefp_chip::measurement::{FingerprintPlan, SideChannelMeter};
use sidefp_chip::trojan::Trojan;
use sidefp_core::stages::{PremanufacturingStage, SiliconStage, Testbench};
use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_silicon::params::ProcessPoint;
use sidefp_silicon::pcm::PcmSuite;

/// Reduced-size configuration so a single bench iteration stays in the
/// tens-of-milliseconds range; relative stage costs match the full run.
fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        chips: 12,
        mc_samples: 50,
        kde_samples: 3000,
        ..Default::default()
    }
}

fn bench_fingerprint(c: &mut Criterion) {
    let device = WirelessCryptoIc::new(ProcessPoint::nominal(), [0xa5; 16], Trojan::None);
    let plan = FingerprintPlan::random(&mut StdRng::seed_from_u64(1), 6).unwrap();
    let meter = SideChannelMeter::default();
    c.bench_function("fingerprint_6_blocks", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| std::hint::black_box(meter.fingerprint(&device, &plan, &mut rng)))
    });
}

fn bench_stages(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("stage_premanufacturing", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let bench = Testbench::random(&mut rng, 6, PcmSuite::paper_default()).unwrap();
            std::hint::black_box(PremanufacturingStage::run(&config, &bench, &mut rng).unwrap())
        })
    });
    c.bench_function("stage_silicon", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let bench = Testbench::random(&mut rng, 6, PcmSuite::paper_default()).unwrap();
        let pre = PremanufacturingStage::run(&config, &bench, &mut rng).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            std::hint::black_box(SiliconStage::run(&config, &bench, &pre, &mut rng).unwrap())
        })
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    c.bench_function("paper_experiment_reduced", |b| {
        b.iter(|| {
            std::hint::black_box(PaperExperiment::new(bench_config()).unwrap().run().unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fingerprint, bench_stages, bench_full_experiment
}
criterion_main!(benches);
