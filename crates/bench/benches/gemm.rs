//! Criterion micro-benchmarks for the packed-panel GEMM layer: the plain
//! product, the transposed-B path, and the fused Gram/distance epilogues
//! that the kernel methods (KMM, OCSVM, KDE, MMD) are built on.
//!
//! The shapes mirror the pipeline's hot call sites: tall-skinny
//! fingerprint matrices (many devices, few features) driving `X Xᵀ`-style
//! symmetric kernels, plus one square product for the generic path.

use criterion::{criterion_group, criterion_main, Criterion};
use sidefp_linalg::gemm::{self, Epilogue};
use sidefp_linalg::Matrix;
use sidefp_stats::{GramMatrix, Kernel};

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
            .wrapping_add(seed);
        ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5
    })
}

fn bench_gemm(c: &mut Criterion) {
    let a = filled(256, 256, 1);
    let b = filled(256, 256, 2);
    c.bench_function("gemm_nn_256", |bench| {
        let mut out = Matrix::zeros(256, 256);
        bench.iter(|| {
            gemm::gemm_nn(&a, &b, &mut out);
            std::hint::black_box(out.row(0)[0])
        })
    });

    let x = filled(600, 8, 3);
    let y = filled(400, 8, 4);
    c.bench_function("gemm_nt_600x8_400x8", |bench| {
        let mut out = Matrix::zeros(600, 400);
        bench.iter(|| {
            gemm::gemm_nt_fused(&x, &y, &Epilogue::None, &mut out);
            std::hint::black_box(out.row(0)[0])
        })
    });
}

fn bench_fused_epilogues(c: &mut Criterion) {
    let x = filled(600, 8, 5);
    let norms: Vec<f64> = (0..x.nrows())
        .map(|i| gemm::self_dot_fold(x.row(i)))
        .collect();

    c.bench_function("syrk_sqdist_600x8", |bench| {
        let mut out = Matrix::zeros(600, 600);
        bench.iter(|| {
            out.as_mut_slice().fill(0.0);
            gemm::syrk_fused(
                &x,
                &Epilogue::SquaredDistance {
                    a_norms: &norms,
                    b_norms: &norms,
                },
                &mut out,
            );
            std::hint::black_box(out.row(0)[1])
        })
    });

    c.bench_function("syrk_rbf_600x8", |bench| {
        let mut out = Matrix::zeros(600, 600);
        bench.iter(|| {
            out.as_mut_slice().fill(0.0);
            gemm::syrk_fused(
                &x,
                &Epilogue::Rbf {
                    gamma: 0.5,
                    a_norms: &norms,
                    b_norms: &norms,
                },
                &mut out,
            );
            std::hint::black_box(out.row(0)[1])
        })
    });

    // End-to-end fused RBF Gram through the stats entry point (includes
    // the lower-triangle mirror the consumers see).
    c.bench_function("gram_rbf_600x8", |bench| {
        bench.iter(|| {
            let g = GramMatrix::symmetric(Kernel::Rbf { gamma: 0.5 }, &x);
            std::hint::black_box(g.matrix().row(0)[1])
        })
    });
}

criterion_group!(benches, bench_gemm, bench_fused_epilogues);
criterion_main!(benches);
