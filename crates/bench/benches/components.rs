//! Criterion micro-benchmarks for the statistical and cryptographic
//! components the detection flow is built from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sidefp_chip::aes::Aes128;
use sidefp_linalg::Matrix;
use sidefp_stats::bootstrap::proportion_interval;
use sidefp_stats::kde::{AdaptiveKde, KdeConfig};
use sidefp_stats::mars::{Mars, MarsConfig};
use sidefp_stats::mmd_test::mmd_permutation_test;
use sidefp_stats::roc::RocCurve;
use sidefp_stats::{
    DetectionLabel, GramMatrix, Kernel, KernelMeanMatching, KmmConfig, MultivariateNormal,
    OneClassSvm, OneClassSvmConfig, Pca,
};

fn gaussian(n: usize, d: usize, seed: u64) -> Matrix {
    let mvn = MultivariateNormal::independent(vec![0.0; d], &vec![1.0; d]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    mvn.sample_matrix(&mut rng, n)
}

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new([0x2b; 16]);
    let block = [0x42u8; 16];
    c.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| std::hint::black_box(aes.encrypt_block(&block)))
    });
    c.bench_function("aes128_key_schedule", |b| {
        b.iter(|| std::hint::black_box(Aes128::new([0x5a; 16])))
    });
}

fn bench_linalg(c: &mut Criterion) {
    let data = gaussian(100, 6, 1);
    let cov = data.covariance().unwrap();
    c.bench_function("covariance_100x6", |b| {
        b.iter(|| std::hint::black_box(data.covariance().unwrap()))
    });
    c.bench_function("symmetric_eigen_6x6", |b| {
        b.iter(|| std::hint::black_box(cov.symmetric_eigen().unwrap()))
    });
    c.bench_function("cholesky_6x6", |b| {
        b.iter(|| std::hint::black_box(cov.cholesky().unwrap()))
    });
}

fn bench_kde(c: &mut Criterion) {
    let data = gaussian(100, 6, 2);
    c.bench_function("kde_fit_100x6", |b| {
        b.iter(|| std::hint::black_box(AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap()))
    });
    let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
    c.bench_function("kde_sample_1000", |b| {
        b.iter_batched(
            || StdRng::seed_from_u64(3),
            |mut rng| std::hint::black_box(kde.sample_matrix(&mut rng, 1000)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("kde_density_query", |b| {
        b.iter(|| std::hint::black_box(kde.density(&[0.1; 6]).unwrap()))
    });
}

fn bench_kmm(c: &mut Criterion) {
    let train = gaussian(100, 1, 4);
    let mut test = gaussian(120, 1, 5);
    for i in 0..test.nrows() {
        test[(i, 0)] += 1.0;
    }
    c.bench_function("kmm_fit_100_vs_120", |b| {
        b.iter(|| {
            std::hint::black_box(
                KernelMeanMatching::fit(&train, &test, &KmmConfig::default()).unwrap(),
            )
        })
    });
    c.bench_function("kmm_mean_shift_8_iters", |b| {
        b.iter(|| {
            std::hint::black_box(
                KernelMeanMatching::mean_shift_population(&train, &test, &KmmConfig::default(), 8)
                    .unwrap(),
            )
        })
    });
}

fn bench_mars(c: &mut Criterion) {
    let x = gaussian(100, 1, 6);
    let y: Vec<f64> = x.col(0).iter().map(|v| (v * 1.5).sin() + v).collect();
    c.bench_function("mars_fit_100x1", |b| {
        b.iter(|| std::hint::black_box(Mars::fit(&x, &y, &MarsConfig::default()).unwrap()))
    });
    let model = Mars::fit(&x, &y, &MarsConfig::default()).unwrap();
    c.bench_function("mars_predict", |b| {
        b.iter(|| std::hint::black_box(sidefp_stats::Regressor::predict(&model, &[0.3]).unwrap()))
    });
}

fn bench_ocsvm(c: &mut Criterion) {
    let small = gaussian(100, 6, 7);
    let large = gaussian(1500, 6, 8);
    let cfg = OneClassSvmConfig {
        nu: 0.05,
        kernel: Kernel::Rbf { gamma: 0.5 },
        ..Default::default()
    };
    c.bench_function("ocsvm_fit_100x6", |b| {
        b.iter(|| std::hint::black_box(OneClassSvm::fit(&small, &cfg).unwrap()))
    });
    c.bench_function("ocsvm_fit_1500x6", |b| {
        b.iter(|| std::hint::black_box(OneClassSvm::fit(&large, &cfg).unwrap()))
    });
    let svm = OneClassSvm::fit(&small, &cfg).unwrap();
    c.bench_function("ocsvm_decision", |b| {
        b.iter(|| std::hint::black_box(svm.decision_function(&[0.2; 6]).unwrap()))
    });
}

fn bench_gram(c: &mut Criterion) {
    // The shared Gram-matrix engine every kernel consumer (KMM, OCSVM,
    // MMD) now runs on: symmetric fill at the B-boundary training size,
    // with a threads=1 contrast to expose the fan-out gain.
    let data = gaussian(600, 6, 30);
    let kernel = Kernel::Rbf { gamma: 0.5 };
    c.bench_function("gram_symmetric_600x6", |b| {
        b.iter(|| std::hint::black_box(GramMatrix::symmetric(kernel, &data)))
    });
    c.bench_function("gram_symmetric_600x6_threads1", |b| {
        b.iter(|| {
            sidefp_parallel::with_threads(1, || {
                std::hint::black_box(GramMatrix::symmetric(kernel, &data))
            })
        })
    });
    let queries = gaussian(600, 6, 31);
    c.bench_function("gram_cross_600x600", |b| {
        b.iter(|| std::hint::black_box(GramMatrix::cross(kernel, &data, &queries).unwrap()))
    });
}

fn bench_parallel_kde(c: &mut Criterion) {
    // Parallel density evaluation and streamed sampling — the S2/S5
    // enhancement hot path.
    let data = gaussian(200, 6, 32);
    let kde = AdaptiveKde::fit(&data, &KdeConfig::default()).unwrap();
    let queries = gaussian(400, 6, 33);
    c.bench_function("kde_density_rows_400", |b| {
        b.iter(|| std::hint::black_box(kde.density_rows(&queries).unwrap()))
    });
    c.bench_function("kde_density_rows_400_threads1", |b| {
        b.iter(|| {
            sidefp_parallel::with_threads(1, || {
                std::hint::black_box(kde.density_rows(&queries).unwrap())
            })
        })
    });
    c.bench_function("kde_sample_streamed_1000", |b| {
        b.iter(|| std::hint::black_box(kde.sample_matrix_streamed(3, 1000)))
    });
}

fn bench_pca(c: &mut Criterion) {
    let data = gaussian(1000, 6, 9);
    c.bench_function("pca_fit_1000x6", |b| {
        b.iter(|| std::hint::black_box(Pca::fit(&data).unwrap()))
    });
    let pca = Pca::fit(&data).unwrap();
    c.bench_function("pca_project_1000_top3", |b| {
        b.iter(|| std::hint::black_box(pca.project(&data, 3).unwrap()))
    });
}

fn bench_inference(c: &mut Criterion) {
    // ROC over 120 scored devices.
    let scores: Vec<(f64, DetectionLabel)> = (0..120)
        .map(|i| {
            (
                (i as f64 * 0.37).sin(),
                if i % 3 == 0 {
                    DetectionLabel::TrojanFree
                } else {
                    DetectionLabel::TrojanInfested
                },
            )
        })
        .collect();
    c.bench_function("roc_curve_120", |b| {
        b.iter(|| std::hint::black_box(RocCurve::from_scores(scores.clone()).unwrap()))
    });

    // Permutation MMD between two 60-point samples.
    let a = gaussian(60, 6, 21);
    let bm = gaussian(60, 6, 22);
    c.bench_function("mmd_permutation_100", |b| {
        b.iter(|| std::hint::black_box(mmd_permutation_test(&a, &bm, None, 100, 1).unwrap()))
    });

    // Bootstrap CI over 120 Bernoulli outcomes.
    let outcomes: Vec<bool> = (0..120).map(|i| i % 7 == 0).collect();
    c.bench_function("bootstrap_ci_2000", |b| {
        b.iter(|| std::hint::black_box(proportion_interval(&outcomes, 0.95, 2000, 1).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aes, bench_linalg, bench_kde, bench_kmm, bench_mars, bench_ocsvm, bench_gram,
        bench_parallel_kde, bench_pca, bench_inference
}
criterion_main!(benches);
