//! Shared helpers for the benchmark harness binaries.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation artifacts:
//!
//! - `table1` — Table 1 (FP/FN of B1–B5 + golden baseline, ROC/AUC, MMD
//!   certification, bootstrap CIs; writes `target/table1.md`),
//! - `fig4` — Figure 4 (PCA projections; CSV + SVG under `target/fig4/`),
//! - `wafermap` — spatial map of verdicts (ASCII + SVG),
//! - `ablation_*` — parameter sweeps around the design choices,
//! - `extension_*` — experiments beyond the paper (PCM tampering,
//!   multi-parameter fingerprints, environment mismatch),
//! - `diagnose` / `calibrate` — the tools used to calibrate the
//!   synthetic fab against the paper's Table-1 shape.
//!
//! The criterion benches in `benches/` measure component and pipeline
//! performance.

#![warn(missing_docs)]

pub mod plot;

use std::time::Instant;

/// Runs a closure, printing its wall-clock duration.
///
/// # Example
///
/// ```
/// let value = sidefp_bench::timed("demo", || 2 + 2);
/// assert_eq!(value, 4);
/// ```
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}] completed in {:.2?}", start.elapsed());
    out
}

/// Unwraps a `Result`, printing the error and exiting with status 1
/// instead of panicking.
///
/// Bench binaries are user-facing tools: a failed fit or a bad config
/// should produce one readable error line and a nonzero exit code, not
/// a panic backtrace. Use `?` where the caller already returns a
/// `Result`; this helper covers closures (timing loops, iterator
/// chains) where `?` cannot propagate.
pub fn or_die<T, E: std::fmt::Display>(result: Result<T, E>) -> T {
    match result {
        Ok(value) => value,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

/// Formats a float series as a compact comma-separated string.
pub fn format_series(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.5}"))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_closure_value() {
        assert_eq!(timed("t", || 41 + 1), 42);
    }

    #[test]
    fn or_die_passes_ok_values_through() {
        let ok: Result<i32, String> = Ok(7);
        assert_eq!(or_die(ok), 7);
    }

    #[test]
    fn format_series_joins_with_commas() {
        assert_eq!(format_series(&[1.0, 2.5]), "1.00000,2.50000");
        assert_eq!(format_series(&[]), "");
    }
}
