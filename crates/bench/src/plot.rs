//! Minimal dependency-free SVG scatter plots for the Figure-4 panels.

/// One scatter series: a label, a CSS color and its points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// CSS color (e.g. `"#7b3ff2"`).
    pub color: String,
    /// Marker radius in pixels.
    pub radius: f64,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// Renders series into a standalone SVG scatter plot.
///
/// Axes are auto-scaled to the joint data range with a 5 % margin; the
/// output is a complete SVG document string.
///
/// # Example
///
/// ```
/// use sidefp_bench::plot::{scatter_svg, Series};
///
/// let svg = scatter_svg(
///     "demo",
///     &[Series {
///         label: "points".into(),
///         color: "#336699".into(),
///         radius: 2.0,
///         points: vec![(0.0, 0.0), (1.0, 1.0)],
///     }],
/// );
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("circle"));
/// ```
pub fn scatter_svg(title: &str, series: &[Series]) -> String {
    const WIDTH: f64 = 640.0;
    const HEIGHT: f64 = 480.0;
    const MARGIN: f64 = 48.0;

    // Joint data range.
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for (x, y) in &s.points {
            if x.is_finite() && y.is_finite() {
                xs.push(*x);
                ys.push(*y);
            }
        }
    }
    let (x_min, x_max) = padded_range(&xs);
    let (y_min, y_max) = padded_range(&ys);
    let sx = |x: f64| MARGIN + (x - x_min) / (x_max - x_min) * (WIDTH - 2.0 * MARGIN);
    let sy = |y: f64| HEIGHT - MARGIN - (y - y_min) / (y_max - y_min) * (HEIGHT - 2.0 * MARGIN);

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" viewBox=\"0 0 {WIDTH} {HEIGHT}\">\n"
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    out.push_str(&format!(
        "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"16\">{}</text>\n",
        WIDTH / 2.0,
        escape(title)
    ));
    // Axes.
    out.push_str(&format!(
        "<line x1=\"{MARGIN}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"#555\"/>\n",
        HEIGHT - MARGIN,
        WIDTH - MARGIN
    ));
    out.push_str(&format!(
        "<line x1=\"{MARGIN}\" y1=\"{MARGIN}\" x2=\"{MARGIN}\" y2=\"{}\" stroke=\"#555\"/>\n",
        HEIGHT - MARGIN
    ));
    out.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"12\">PC1</text>\n",
        WIDTH / 2.0,
        HEIGHT - 12.0
    ));
    out.push_str(&format!(
        "<text x=\"14\" y=\"{}\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"12\" transform=\"rotate(-90 14 {0})\">PC2</text>\n",
        HEIGHT / 2.0
    ));

    // Points.
    for s in series {
        for (x, y) in &s.points {
            if x.is_finite() && y.is_finite() {
                out.push_str(&format!(
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{}\" fill=\"{}\" fill-opacity=\"0.55\"/>\n",
                    sx(*x),
                    sy(*y),
                    s.radius,
                    s.color
                ));
            }
        }
    }

    // Legend.
    for (i, s) in series.iter().enumerate() {
        let ly = MARGIN + 8.0 + i as f64 * 18.0;
        out.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{ly}\" r=\"4\" fill=\"{}\"/>\n",
            WIDTH - MARGIN - 110.0,
            s.color
        ));
        out.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-family=\"sans-serif\" font-size=\"12\">{}</text>\n",
            WIDTH - MARGIN - 100.0,
            ly + 4.0,
            escape(&s.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Data range with a 5 % margin; degenerate ranges expand to ±0.5.
fn padded_range(values: &[f64]) -> (f64, f64) {
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() {
        return (-1.0, 1.0);
    }
    let span = (max - min).max(1e-9);
    (min - 0.05 * span, max + 0.05 * span)
}

/// Escapes XML-special characters in labels.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "a".into(),
                color: "#ff0000".into(),
                radius: 2.0,
                points: vec![(0.0, 0.0), (1.0, 2.0)],
            },
            Series {
                label: "b".into(),
                color: "#0000ff".into(),
                radius: 3.0,
                points: vec![(-1.0, 1.0)],
            },
        ]
    }

    #[test]
    fn svg_structure() {
        let svg = scatter_svg("panel", &demo_series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3 + 2); // points + legend
        assert!(svg.contains("panel"));
        assert!(svg.contains("#ff0000"));
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let svg = scatter_svg(
            "t",
            &[Series {
                label: "x".into(),
                color: "#000".into(),
                radius: 2.0,
                points: vec![(f64::NAN, 0.0), (0.0, 0.5)],
            }],
        );
        assert_eq!(svg.matches("<circle").count(), 1 + 1);
    }

    #[test]
    fn labels_are_escaped() {
        let svg = scatter_svg(
            "a < b & c",
            &[Series {
                label: "s<1>".into(),
                color: "#000".into(),
                radius: 1.0,
                points: vec![(0.0, 0.0)],
            }],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
    }

    #[test]
    fn degenerate_range_is_handled() {
        let svg = scatter_svg(
            "t",
            &[Series {
                label: "x".into(),
                color: "#000".into(),
                radius: 2.0,
                points: vec![(1.0, 1.0), (1.0, 1.0)],
            }],
        );
        assert!(svg.contains("circle"));
        // No NaN coordinates leaked into the document.
        assert!(!svg.contains("NaN"));
    }
}
