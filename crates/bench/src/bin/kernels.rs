//! Large-`n` kernel layer scaling bench: exact versus sub-quadratic
//! approximation paths (Nyström, random Fourier features, binned KDE).
//!
//! Usage:
//!
//! ```text
//! kernels          # print the scaling table
//! kernels --json   # additionally dump BENCH_kernels.json
//! ```
//!
//! Device populations n ∈ {1k, 10k, 50k}. The exact paths are skipped at
//! 50k (the dense/cached O(n²) solves stop being practical there — that
//! is the point of the approximation layer) and the exact KMM is skipped
//! beyond 1k (its dense train Gram would need 800 MB at 10k). All OCSVM
//! solves share one SMO budget (tol, max_iter) and all KMM solves share
//! one projected-gradient budget, so the wall-clock ratios compare kernel
//! representations, not convergence settings.
//!
//! Build with `--release`; the debug profile distorts the hot paths.

use std::fmt::Write as _;
use std::time::Instant;

use sidefp_bench::or_die;
use sidefp_linalg::Matrix;
use sidefp_stats::kde::{AdaptiveKde, KdeConfig};
use sidefp_stats::{
    Kernel, KernelApprox, KernelMeanMatching, KmmConfig, OneClassSvm, OneClassSvmConfig,
};

/// Deterministic synthetic population: mixture-free anisotropic blob with
/// per-coordinate phase offsets (no RNG dependency, identical across runs).
fn population(n: usize, d: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, d, |i, j| {
        let t = (i as f64 + 1.0) * 0.618_033_988_749_895 + salt as f64 * 0.1;
        let u = (j as f64 + 1.0) * 0.414_213_562_373_095;
        // Two incommensurate sinusoids approximate a bounded light-tailed
        // cloud well enough for solver timing purposes.
        (t * (j as f64 + 1.5)).sin() + 0.3 * (u * (i as f64 + 2.5)).cos()
    })
}

/// Minimum wall-clock over `reps` runs, in milliseconds (load noise on a
/// shared box is one-sided).
fn time_min_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let mut value = f();
    let mut best = start.elapsed().as_secs_f64() * 1000.0;
    for _ in 1..reps.max(1) {
        let start = Instant::now();
        value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    (best, value)
}

/// One population size's measurements (`None` = path skipped at this n).
struct SizeReport {
    n: usize,
    ocsvm_exact_ms: Option<f64>,
    ocsvm_nystrom_ms: f64,
    ocsvm_rff_ms: f64,
    kmm_exact_ms: Option<f64>,
    kmm_lowrank_ms: f64,
    kde_fit_ms: f64,
    kde_dense_eval_ms: Option<f64>,
    kde_binned_build_ms: f64,
    kde_binned_eval_ms: f64,
}

fn ratio(num: Option<f64>, den: f64) -> String {
    match num {
        Some(v) => format!("{:.1}x", v / den),
        None => "-".into(),
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.2}"),
        None => "null".into(),
    }
}

fn bench_size(n: usize, reps: usize) -> Result<SizeReport, Box<dyn std::error::Error>> {
    const SVM_DIM: usize = 6;
    const KDE_DIM: usize = 3;
    const QUERIES: usize = 200;

    let data = population(n, SVM_DIM, 1);
    let svm_cfg = |approx: KernelApprox| OneClassSvmConfig {
        nu: 0.05,
        kernel: Kernel::Rbf { gamma: 0.5 },
        tol: 1e-6,
        max_iter: 100_000,
        approx,
    };

    let ocsvm_exact_ms = (n <= 10_000).then(|| {
        time_min_ms(reps, || {
            or_die(OneClassSvm::fit(&data, &svm_cfg(KernelApprox::Exact)))
        })
        .0
    });
    let (ocsvm_nystrom_ms, _) = time_min_ms(reps, || {
        or_die(OneClassSvm::fit(
            &data,
            &svm_cfg(KernelApprox::Nystrom { rank: 128 }),
        ))
    });
    let (ocsvm_rff_ms, _) = time_min_ms(reps, || {
        or_die(OneClassSvm::fit(
            &data,
            &svm_cfg(KernelApprox::Rff { features: 256 }),
        ))
    });

    let test = population(n / 2, SVM_DIM, 2);
    let kmm_cfg = |approx: KernelApprox| KmmConfig {
        kernel: Some(Kernel::Rbf { gamma: 0.5 }),
        max_iter: 500,
        approx,
        ..Default::default()
    };
    let kmm_exact_ms = (n <= 1_000).then(|| {
        time_min_ms(reps, || {
            or_die(KernelMeanMatching::fit(
                &data,
                &test,
                &kmm_cfg(KernelApprox::Exact),
            ))
        })
        .0
    });
    let (kmm_lowrank_ms, _) = time_min_ms(reps, || {
        or_die(KernelMeanMatching::fit(
            &data,
            &test,
            &kmm_cfg(KernelApprox::Nystrom { rank: 128 }),
        ))
    });

    // KDE: the pipeline's production bandwidth (0.35) on a compact query
    // panel; eval is the pipeline-relevant cost (fit happens once, scoring
    // happens per device and per synthetic sample).
    let kde_data = population(n, KDE_DIM, 3);
    let queries = population(QUERIES, KDE_DIM, 4);
    let kde_cfg = KdeConfig {
        bandwidth: Some(0.35),
        alpha: 0.5,
    };
    let (kde_fit_ms, kde) = time_min_ms(1, || or_die(AdaptiveKde::fit(&kde_data, &kde_cfg)));
    let kde_dense_eval_ms =
        (n <= 10_000).then(|| time_min_ms(reps, || or_die(kde.density_rows(&queries))).0);
    let (kde_binned_build_ms, binned) = time_min_ms(reps, || kde.binned());
    let (kde_binned_eval_ms, binned_rows) =
        time_min_ms(reps, || or_die(binned.density_rows(&queries)));
    // Guard against a silently wrong index: binned densities must track the
    // dense ones whenever both were computed.
    if n <= 10_000 {
        let dense_rows = kde.density_rows(&queries)?;
        for (i, (a, b)) in dense_rows.iter().zip(&binned_rows).enumerate() {
            if (a - b).abs() > 1e-9 * a.abs().max(1e-300) {
                return Err(format!("binned KDE diverged at query {i}: {a} vs {b}").into());
            }
        }
    }

    Ok(SizeReport {
        n,
        ocsvm_exact_ms,
        ocsvm_nystrom_ms,
        ocsvm_rff_ms,
        kmm_exact_ms,
        kmm_lowrank_ms,
        kde_fit_ms,
        kde_dense_eval_ms,
        kde_binned_build_ms,
        kde_binned_eval_ms,
    })
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");
    // Bare numeric args override the default size sweep (handy for quick
    // single-size runs while tuning); the committed BENCH_kernels.json is
    // always produced from the full default sweep.
    let mut sizes: Vec<usize> = std::env::args().filter_map(|a| a.parse().ok()).collect();
    if sizes.is_empty() {
        sizes = vec![1_000, 10_000, 50_000];
    }

    let reports: Vec<SizeReport> = sizes
        .iter()
        .map(|&n| {
            let reps = if n >= 50_000 { 1 } else { 2 };
            eprintln!("benchmarking n = {n} ...");
            bench_size(n, reps)
        })
        .collect::<Result<_, _>>()?;

    println!("kernel layer scaling (ms, min over reps; '-' = skipped):");
    println!(
        "{:>7} {:>12} {:>12} {:>9} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "n",
        "svm_exact",
        "svm_nystrom",
        "svm_rff",
        "kmm_exact",
        "kmm_lowrank",
        "kde_fit",
        "kde_dense",
        "kde_binned",
        "bin_build"
    );
    for r in &reports {
        println!(
            "{:>7} {:>12} {:>12.1} {:>9.1} {:>12} {:>12.1} {:>10.1} {:>12} {:>12.2} {:>10.1}",
            r.n,
            r.ocsvm_exact_ms
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            r.ocsvm_nystrom_ms,
            r.ocsvm_rff_ms,
            r.kmm_exact_ms
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "-".into()),
            r.kmm_lowrank_ms,
            r.kde_fit_ms,
            r.kde_dense_eval_ms
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            r.kde_binned_eval_ms,
            r.kde_binned_build_ms,
        );
    }
    println!("speedups vs exact (same budgets):");
    for r in &reports {
        println!(
            "  n={:<6} svm: nystrom {} rff {}   kde eval: binned {}",
            r.n,
            ratio(r.ocsvm_exact_ms, r.ocsvm_nystrom_ms),
            ratio(r.ocsvm_exact_ms, r.ocsvm_rff_ms),
            ratio(r.kde_dense_eval_ms, r.kde_binned_eval_ms),
        );
    }

    if json {
        let mut entries = String::new();
        for (i, r) in reports.iter().enumerate() {
            let sep = if i + 1 < reports.len() { "," } else { "" };
            let _ = write!(
                entries,
                "    {{\n      \"n\": {},\n      \"ocsvm_exact_ms\": {},\n      \
                 \"ocsvm_nystrom_ms\": {:.2},\n      \"ocsvm_rff_ms\": {:.2},\n      \
                 \"kmm_exact_ms\": {},\n      \"kmm_lowrank_ms\": {:.2},\n      \
                 \"kde_fit_ms\": {:.2},\n      \"kde_dense_eval_ms\": {},\n      \
                 \"kde_binned_build_ms\": {:.2},\n      \"kde_binned_eval_ms\": {:.2}\n    }}{sep}\n",
                r.n,
                json_opt(r.ocsvm_exact_ms),
                r.ocsvm_nystrom_ms,
                r.ocsvm_rff_ms,
                json_opt(r.kmm_exact_ms),
                r.kmm_lowrank_ms,
                r.kde_fit_ms,
                json_opt(r.kde_dense_eval_ms),
                r.kde_binned_build_ms,
                r.kde_binned_eval_ms,
            );
        }
        let payload = format!("{{\n  \"bench\": \"kernels\",\n  \"sizes\": [\n{entries}  ]\n}}\n");
        std::fs::write("BENCH_kernels.json", payload)?;
        println!("wrote BENCH_kernels.json");
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::ExitCode::FAILURE
        }
    }
}
