//! Ablation: number and kind of PCM structures (`n_p`).
//!
//! The paper used a single path-delay monitor. Additional monitors give the
//! regression more to work with — at the cost of more e-test time.

use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_silicon::pcm::{PcmKind, PcmSuite};

fn main() {
    println!("Ablation: PCM suite composition");
    println!("suite                                  B3(FP|FN)  B4(FP|FN)  B5(FP|FN)");
    let suites: [(&str, Vec<PcmKind>); 4] = [
        ("path-delay (paper)", vec![PcmKind::PathDelay]),
        (
            "delay + ring-osc",
            vec![PcmKind::PathDelay, PcmKind::RingOscillator],
        ),
        (
            "delay + ring-osc + leakage",
            vec![
                PcmKind::PathDelay,
                PcmKind::RingOscillator,
                PcmKind::LeakageCurrent,
            ],
        ),
        (
            "all four monitors",
            vec![
                PcmKind::PathDelay,
                PcmKind::RingOscillator,
                PcmKind::LeakageCurrent,
                PcmKind::VthMonitor,
            ],
        ),
    ];
    for (label, kinds) in suites {
        let suite = match PcmSuite::new(kinds, 0.002) {
            Ok(s) => s,
            Err(e) => {
                println!("{label:<38} invalid suite: {e}");
                continue;
            }
        };
        let config = ExperimentConfig {
            pcm_suite: suite,
            kde_samples: 20_000,
            ..Default::default()
        };
        match PaperExperiment::new(config).and_then(|e| e.run()) {
            Ok(result) => {
                let cell = |name: &str| {
                    result
                        .row(name)
                        .map(|r| {
                            format!(
                                "{:>2}|{:<2}",
                                r.counts.false_positives(),
                                r.counts.false_negatives()
                            )
                        })
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "{label:<38} {}      {}      {}",
                    cell("B3"),
                    cell("B4"),
                    cell("B5")
                );
            }
            Err(e) => println!("{label:<38} failed: {e}"),
        }
    }
    println!();
    println!("Expected: a single delay monitor already carries most of the anchoring");
    println!("signal; extra monitors trim FN modestly.");
}
