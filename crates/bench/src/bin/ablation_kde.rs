//! Ablation: KDE tail-modeling parameters (bandwidth `h`, adaptivity `α`)
//! vs the quality of the enhanced boundaries B2/B5.
//!
//! The bandwidth governs how far the synthetic population reaches beyond
//! the observed samples: too small and B5 degenerates to B4; too large and
//! the trusted region swallows Trojans (FP grows).

use sidefp_core::{ExperimentConfig, PaperExperiment};

fn main() {
    println!("Ablation: KDE bandwidth h and adaptivity alpha");
    println!("h     alpha  B2(FP|FN)  B4(FP|FN)  B5(FP|FN)");
    for h in [0.1, 0.2, 0.4, 0.8, 1.6] {
        for alpha in [0.0, 0.5, 1.0] {
            let mut config = ExperimentConfig {
                kde_samples: 20_000,
                ..Default::default()
            };
            config.kde.bandwidth = Some(h);
            config.kde.alpha = alpha;
            match PaperExperiment::new(config).and_then(|e| e.run()) {
                Ok(result) => {
                    let cell = |name: &str| {
                        result
                            .row(name)
                            .map(|r| {
                                format!(
                                    "{:>2}|{:<2}",
                                    r.counts.false_positives(),
                                    r.counts.false_negatives()
                                )
                            })
                            .unwrap_or_else(|| "-".into())
                    };
                    println!(
                        "{h:<5} {alpha:<6} {}      {}      {}",
                        cell("B2"),
                        cell("B4"),
                        cell("B5")
                    );
                }
                Err(e) => println!("{h:<5} {alpha:<6} failed: {e}"),
            }
        }
    }
    println!();
    println!("Expected: B5's FN falls as h grows (tails cover the real spread) until");
    println!("FP rises when the region reaches the Trojan clusters; alpha widens the");
    println!("far tails at little FP cost.");
}
