//! Sustained batch-scoring throughput bench for the fit/score split.
//!
//! Usage:
//!
//! ```text
//! throughput                  # print the throughput table
//! throughput --json           # additionally dump BENCH_throughput.json
//! throughput --batches 20     # override the batch count
//! throughput --batch-size N   # override devices per batch
//! ```
//!
//! Fits one [`FittedModel`] at the paper's default experiment scale
//! (timed: this is the amortized cost a tester pays once per artifact),
//! measures the artifact's encoded size, then streams wafer-lot-sized
//! synthesized batches through a single [`BatchScorer`]. Reported:
//!
//! - sustained chips/sec over all scored batches,
//! - p50 / p99 per-batch latency (the long-lived-service number),
//! - artifact bytes per scored chip (how the one-time transfer cost
//!   amortizes across a lot stream),
//! - the amortization ratio: full-pipeline classification cost per chip
//!   (fit wall / devices classified by the fit) versus marginal scoring
//!   cost per chip. The committed baseline must keep this ≥ 100× — that
//!   is the whole point of shipping an artifact instead of refitting.
//!
//! Build with `--release`; the debug profile distorts the hot paths.

use std::time::Instant;

use sidefp_core::{BatchScorer, ExperimentConfig, FittedModel, RunContext};

/// Default batches per run.
const BATCHES: usize = 12;

/// Default devices per synthesized batch (wafer-lot scale).
const BATCH_DEVICES: usize = 25_000;

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let flag = |name: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let batches = flag("--batches", BATCHES);
    let batch_devices = flag("--batch-size", BATCH_DEVICES);

    let cfg = ExperimentConfig::default();
    let devices_per_fit = cfg.device_count();

    eprintln!("fitting the paper-scale model once ...");
    let fit_start = Instant::now();
    let model = FittedModel::fit(&cfg)?;
    let fit_ms = fit_start.elapsed().as_secs_f64() * 1000.0;
    let artifact_bytes = model.to_bytes().len();

    let mut scorer = BatchScorer::new(&model);
    let ctx = RunContext::new();

    // Warm-up batch: pulls the workspace buffers into their steady-state
    // sizes so the timed batches measure the pooled path.
    let (fps, pcms) = model.synthesize_batch(1, batch_devices);
    scorer.score_batch(&fps, &pcms, &ctx)?;

    eprintln!("scoring {batches} batches of {batch_devices} devices ...");
    let mut batch_ms: Vec<f64> = Vec::with_capacity(batches);
    let mut scored = 0usize;
    let mut flagged = 0usize;
    let run_start = Instant::now();
    for b in 0..batches {
        let (fps, pcms) = model.synthesize_batch(100 + b as u64, batch_devices);
        let start = Instant::now();
        let result = scorer.score_batch(&fps, &pcms, &ctx)?;
        batch_ms.push(start.elapsed().as_secs_f64() * 1000.0);
        scored += result.kept.len();
        flagged += result.flagged();
    }
    let score_ms = run_start.elapsed().as_secs_f64() * 1000.0;

    let mut sorted = batch_ms.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    let p50 = pct(0.50);
    let p99 = pct(0.99);

    let chips_per_sec = scored as f64 / (score_ms / 1000.0);
    let score_ms_per_chip = score_ms / scored as f64;
    let full_pipeline_ms_per_chip = fit_ms / devices_per_fit as f64;
    let amortization = full_pipeline_ms_per_chip / score_ms_per_chip;
    let bytes_per_chip = artifact_bytes as f64 / scored as f64;

    println!("fit-once / score-millions throughput (paper-default model):");
    println!(
        "  fit (once)        {fit_ms:10.1} ms   ({devices_per_fit} devices classified in-fit)"
    );
    println!("  artifact size     {artifact_bytes:10} bytes");
    println!("  batches           {batches:10}   x {batch_devices} devices");
    println!("  scored            {scored:10} chips   ({flagged} flagged)");
    println!("  throughput        {chips_per_sec:10.0} chips/sec sustained");
    println!("  batch latency     {p50:10.1} ms p50   {p99:.1} ms p99");
    println!(
        "  full pipeline     {full_pipeline_ms_per_chip:10.3} ms/chip (classification by refit)"
    );
    println!("  batch scoring     {score_ms_per_chip:10.6} ms/chip marginal");
    println!("  amortization      {amortization:10.0}x cheaper per chip");
    println!("  artifact overhead {bytes_per_chip:10.3} bytes/chip over this stream");

    if json {
        let payload = format!(
            "{{\n  \"bench\": \"throughput\",\n  \"fit_ms\": {fit_ms:.1},\n  \
             \"artifact_bytes\": {artifact_bytes},\n  \"batches\": {batches},\n  \
             \"batch_devices\": {batch_devices},\n  \"chips_scored\": {scored},\n  \
             \"chips_per_sec\": {chips_per_sec:.0},\n  \"p50_batch_ms\": {p50:.2},\n  \
             \"p99_batch_ms\": {p99:.2},\n  \
             \"full_pipeline_ms_per_chip\": {full_pipeline_ms_per_chip:.4},\n  \
             \"score_ms_per_chip\": {score_ms_per_chip:.6},\n  \
             \"amortization_ratio\": {amortization:.1},\n  \
             \"bytes_per_chip\": {bytes_per_chip:.3}\n}}\n"
        );
        std::fs::write("BENCH_throughput.json", payload)?;
        println!("wrote BENCH_throughput.json");
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::ExitCode::FAILURE
        }
    }
}
