//! Extension experiment: what happens when the attacker *does* tamper with
//! the PCMs?
//!
//! The paper (§1) argues PCM tampering is implausible because (a) PCMs are
//! thoroughly scrutinized by process engineers and (b) "there exists no
//! systematic method for ensuring that such a modification would bring the
//! fingerprints of Trojan-infested devices within the trusted region."
//! This experiment quantifies both halves: the attacker scales the
//! path-delay monitor's readings (to move the predicted trusted region
//! toward the amplitude-Trojan cluster) and we measure
//!
//! 1. the SPC alarm the tamper triggers against the fab-wide kerf
//!    baseline, and
//! 2. the resulting detection metrics — including the mass false alarms
//!    on Trojan-free devices that betray the manipulation even when SPC
//!    were ignored.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin extension_pcm_attack
//! ```

use std::process::ExitCode;

use sidefp_core::spc::paired_check;
use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_silicon::pcm::{PcmKind, PcmTamper};

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let base_config = ExperimentConfig {
        kde_samples: 20_000,
        ..Default::default()
    };

    println!("PCM-tampering attack: attacker scales the path-delay monitor readings");
    println!("to drag the predicted trusted region toward the amplitude-Trojan cluster.");
    println!("Countermeasure: paired die-vs-kerf SPC (the scribe-line structures are");
    println!("outside the product layout and beyond the attacker's reach).");
    println!();
    println!("tamper   SPC z-score  alarm  B5 missed-Trojans  B5 false-alarms");
    for scale in [1.0, 0.99, 0.97, 0.94, 0.90, 0.85] {
        let config = ExperimentConfig {
            pcm_tamper: if scale == 1.0 {
                PcmTamper::none()
            } else {
                PcmTamper::on_kind(PcmKind::PathDelay, scale)
            },
            ..base_config.clone()
        };
        let artifacts = match PaperExperiment::new(config).and_then(|e| e.run_with_artifacts()) {
            Ok(a) => a,
            Err(e) => {
                println!("{scale:<8} failed: {e}");
                continue;
            }
        };
        let spc = paired_check(
            artifacts.silicon.dutts.pcms(),
            artifacts.silicon.dutts.kerf_pcms(),
            3.0,
        )?;
        let b5 = artifacts.result.row("B5").ok_or("B5 row missing")?.counts;
        println!(
            "{scale:<8} {:>10.1}  {:<5} {:>10}/80 {:>14}/40",
            spc.worst_zscore(),
            if spc.alarm() { "YES" } else { "no" },
            b5.false_positives(),
            b5.false_negatives(),
        );
    }
    println!();
    println!("Reading: even a 1% tamper lights up the control chart (z >> 3) long");
    println!("before it helps the Trojans; larger tampers that could shelter them");
    println!("also reject the entire Trojan-free population — a glaring anomaly.");
    println!("This is the paper's argument that golden PCMs are a far weaker");
    println!("assumption than golden chips, made quantitative.");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
