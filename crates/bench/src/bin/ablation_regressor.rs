//! Ablation: regression family for g : PCM → fingerprint.
//!
//! The paper chose MARS; polynomial ridge and k-NN are the baselines. The
//! interesting regime is extrapolation — the silicon PCMs sit beyond the
//! simulated range, where k-NN saturates and high-degree polynomials
//! explode.

use sidefp_core::config::RegressorKind;
use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_stats::knn::KnnConfig;
use sidefp_stats::mars::MarsConfig;
use sidefp_stats::ridge::RidgeConfig;

fn main() {
    println!("Ablation: PCM-to-fingerprint regression family");
    println!("regressor           B3(FP|FN)  B4(FP|FN)  B5(FP|FN)");
    let kinds: [(&str, RegressorKind); 4] = [
        ("MARS (paper)", RegressorKind::Mars(MarsConfig::default())),
        (
            "ridge deg 2",
            RegressorKind::Ridge(RidgeConfig {
                degree: 2,
                lambda: 1e-6,
            }),
        ),
        (
            "ridge deg 4",
            RegressorKind::Ridge(RidgeConfig {
                degree: 4,
                lambda: 1e-6,
            }),
        ),
        ("k-NN (k=5)", RegressorKind::Knn(KnnConfig { k: 5 })),
    ];
    for (label, kind) in kinds {
        let config = ExperimentConfig {
            regressor: kind,
            kde_samples: 20_000,
            ..Default::default()
        };
        match PaperExperiment::new(config).and_then(|e| e.run()) {
            Ok(result) => {
                let cell = |name: &str| {
                    result
                        .row(name)
                        .map(|r| {
                            format!(
                                "{:>2}|{:<2}",
                                r.counts.false_positives(),
                                r.counts.false_negatives()
                            )
                        })
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "{label:<19} {}      {}      {}",
                    cell("B3"),
                    cell("B4"),
                    cell("B5")
                );
            }
            Err(e) => println!("{label:<19} failed: {e}"),
        }
    }
    println!();
    println!("Expected: MARS and low-degree ridge extrapolate stably (log-space");
    println!("power laws are near-linear); k-NN saturates at the training edge and");
    println!("mis-centers every silicon-anchored boundary.");
}
