//! Scenario-matrix sweep: multi-parameter fingerprints × Trojan classes ×
//! process corners, each cell through the full B1–B5 flow.
//!
//! Usage:
//!
//! ```text
//! scenario-matrix           # print the per-scenario FP/FN markdown table
//! scenario-matrix --json    # additionally dump BENCH_scenarios.json
//! scenario-matrix --smoke   # reduced grid (≤4 cells) at reduced sizing
//! ```
//!
//! The grid crosses the four channel stacks (power-only up to
//! power+iddt+delay+spectral) with two Trojan suites (the paper's always-on
//! RF leaks; a triggered/dormant payload) and two process corners (tt, ff)
//! under the paper's technology drift — 16 cells. Cell 0 is the paper's own
//! setting and runs on the base seed, so its B1–B5 row *is* Table 1; every
//! other cell runs on a seed forked from the base by cell index
//! ([`sidefp_parallel::fork_seed`]), so the matrix is bit-identical at any
//! thread count and unchanged by reordering or subsetting the grid.
//!
//! Build with `--release`; the debug profile distorts nothing here but
//! takes minutes instead of seconds.

use std::process::ExitCode;

use sidefp_chip::trojan::TrojanSuite;
use sidefp_core::scenario::{channel_sets, Scenario, ScenarioOutcome};
use sidefp_core::{CoreError, ExperimentConfig};
use sidefp_silicon::{ProcessCorner, TechnologyPreset};

/// Gate-equivalent size of the dormant payload in the matrix.
const DORMANT_GATES: usize = 1000;

/// Builds the full 16-cell grid over a base configuration.
fn grid(base: &ExperimentConfig) -> Vec<Scenario> {
    let suites = [
        TrojanSuite::rf_leaks(base.amplitude_delta, base.frequency_delta),
        TrojanSuite::dormant(DORMANT_GATES),
    ];
    let corners = [ProcessCorner::Typical, ProcessCorner::FastFast];
    let mut cells = Vec::new();
    for stack in channel_sets(&base.meter) {
        for suite in &suites {
            for corner in corners {
                cells.push(Scenario::new(
                    stack.clone(),
                    suite.clone(),
                    corner,
                    TechnologyPreset::paper(),
                ));
            }
        }
    }
    cells
}

/// The reduced smoke grid: both suites through the paper stack and the
/// widest stack, typical corner only.
fn smoke_grid(base: &ExperimentConfig) -> Vec<Scenario> {
    grid(base)
        .into_iter()
        .filter(|s| s.corner == ProcessCorner::Typical)
        .filter(|s| s.channels.channels().len() == 1 || s.channels.channels().len() == 4)
        .collect()
}

/// Runs every cell sequentially (each cell is internally parallel), with
/// the per-cell seed policy described in the module docs.
fn run_matrix(
    cells: &[Scenario],
    base: &ExperimentConfig,
) -> Result<Vec<ScenarioOutcome>, CoreError> {
    let paper = Scenario::paper_cell(base);
    cells
        .iter()
        .enumerate()
        .map(|(idx, cell)| {
            let seed = if *cell == paper {
                base.seed
            } else {
                sidefp_parallel::fork_seed(base.seed, idx as u64)
            };
            eprintln!("[{}/{}] {}", idx + 1, cells.len(), cell.name);
            cell.run(base, seed)
        })
        .collect()
}

fn render_markdown(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::from("## Scenario matrix — per-cell FP/FN (B1–B5)\n\n");
    out.push_str(
        "| scenario | n_m | devices | B1 fp/fn | B2 fp/fn | B3 fp/fn | B4 fp/fn | B5 fp/fn |\n",
    );
    out.push_str(
        "|----------|----:|--------:|---------:|---------:|---------:|---------:|---------:|\n",
    );
    for o in outcomes {
        out.push_str(&format!(
            "| {} | {} | {} ",
            o.name, o.fingerprint_width, o.devices
        ));
        for b in ["B1", "B2", "B3", "B4", "B5"] {
            match o.row(b) {
                Some(r) => out.push_str(&format!(
                    "| {}/{} ",
                    r.counts.false_positives(),
                    r.counts.false_negatives()
                )),
                None => out.push_str("| — "),
            }
        }
        out.push_str("|\n");
    }
    out.push_str("\nFP = missed Trojans, FN = false alarms (paper conventions).\n");
    out
}

fn render_json(base_seed: u64, outcomes: &[ScenarioOutcome]) -> String {
    let mut out = format!(
        "{{\n  \"bench\": \"scenario_matrix\",\n  \"base_seed\": {base_seed},\n  \"scenarios\": [\n"
    );
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"channels\": \"{}\",\n      \
             \"classes\": \"{}\",\n      \"corner\": \"{}\",\n      \"preset\": \"{}\",\n      \
             \"seed\": {},\n      \"devices\": {},\n      \"fingerprint_width\": {}",
            o.name,
            o.channels.join("+"),
            o.trojan_classes.join("+"),
            o.corner,
            o.preset,
            o.seed,
            o.devices,
            o.fingerprint_width,
        ));
        for r in &o.table1 {
            out.push_str(&format!(
                ",\n      \"{}_fp\": {},\n      \"{}_infested\": {},\n      \
                 \"{}_fn\": {},\n      \"{}_free\": {}",
                r.dataset.to_lowercase(),
                r.counts.false_positives(),
                r.dataset.to_lowercase(),
                r.counts.infested_total(),
                r.dataset.to_lowercase(),
                r.counts.false_negatives(),
                r.dataset.to_lowercase(),
                r.counts.free_total(),
            ));
        }
        out.push_str(if i + 1 == outcomes.len() {
            "\n    }\n"
        } else {
            "\n    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");
    let smoke = std::env::args().any(|a| a == "--smoke");

    let base = if smoke {
        ExperimentConfig {
            chips: 10,
            mc_samples: 40,
            kde_samples: 1200,
            ..Default::default()
        }
    } else {
        ExperimentConfig::default()
    };

    let cells = if smoke {
        smoke_grid(&base)
    } else {
        grid(&base)
    };
    if smoke && cells.len() > 4 {
        return Err(format!("smoke grid has {} cells, expected <= 4", cells.len()).into());
    }
    let outcomes = sidefp_bench::timed("scenario-matrix", || run_matrix(&cells, &base))?;

    print!("{}", render_markdown(&outcomes));

    if json {
        let payload = render_json(base.seed, &outcomes);
        std::fs::write("BENCH_scenarios.json", payload)
            .map_err(|e| format!("write BENCH_scenarios.json: {e}"))?;
        println!(
            "\nwrote BENCH_scenarios.json ({} scenarios)",
            outcomes.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scenario-matrix: {e}");
            ExitCode::FAILURE
        }
    }
}
