//! Streaming-lot recalibration cost bench: incremental recalibration
//! versus full from-scratch refit on a drifting wafer-lot stream.
//!
//! Usage:
//!
//! ```text
//! drift          # print the cost table
//! drift --json   # additionally dump BENCH_drift.json
//! ```
//!
//! Two [`LotStream`]s consume bit-identical drifting lots (the lot
//! measurements are a pure function of the seed, independent of the
//! recalibration policy). The first keeps `refit_limit` high so every
//! drift alarm is absorbed by the incremental tier (warm-started SMO,
//! KMM re-weighting, KDE bandwidth refresh); the second sets
//! `refit_limit = 0`, forcing a full S3–S5 refit on every alarm. Each
//! stream's own observability context accumulates the wall-clock of the
//! `recalibrate.incremental` / `recalibrate.full_refit` spans, so the
//! reported per-action costs cover exactly the recalibration work — lot
//! measurement and boundary evaluation, common to both policies, are
//! excluded.
//!
//! Build with `--release`; the debug profile distorts the hot paths.

use std::time::Instant;

use sidefp_core::{ExperimentConfig, PaperExperiment, RecalHealth};
use sidefp_faults::{DriftClass, DriftPlan};
use sidefp_obs::RunContext;

/// Lots per stream after the calibration lot.
const LOTS: usize = 8;

/// A mid-scale configuration: large enough that the S3–S5 refit work
/// (KMM mean-shift population, KDE fit + sampling, three OCSVM solves)
/// dominates the spans, small enough for a sub-minute gate.
fn config(refit_limit: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        chips: 16,
        mc_samples: 150,
        kde_samples: 3000,
        seed: 99,
        ..Default::default()
    };
    cfg.recalibration.refit_limit = refit_limit;
    cfg
}

/// A drift plan that alarms on essentially every lot: a slow ramp from
/// lot 1 plus a modest step at lot 3, all well inside what the
/// incremental tier may absorb.
fn drift() -> DriftPlan {
    DriftPlan {
        seed: 4242,
        ..DriftPlan::none()
    }
    .with_drift(DriftClass::SlowRamp, 0.5, 1)
    .with_drift(DriftClass::MeanShift, 1.5, 3)
}

/// Accumulated milliseconds under one timing key (0 if never recorded).
fn timing_ms(obs: &RunContext, key: &str) -> f64 {
    obs.timing_snapshot()
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, ms)| *ms)
        .unwrap_or(0.0)
}

struct PolicyReport {
    health: RecalHealth,
    span_ms: f64,
    wall_ms: f64,
}

/// Streams `LOTS` drifted lots under one policy, returning the health
/// counters and the accumulated recalibration-span time.
fn run_policy(refit_limit: f64, span_key: &str) -> Result<PolicyReport, sidefp_core::CoreError> {
    let obs = RunContext::new();
    let experiment = PaperExperiment::new(config(refit_limit))?;
    let mut stream = experiment.stream_observed(drift(), &obs)?;
    let start = Instant::now();
    for _ in 0..=LOTS {
        stream.advance()?;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Ok(PolicyReport {
        health: stream.health(),
        span_ms: timing_ms(&obs, span_key),
        wall_ms,
    })
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");

    eprintln!("streaming {} drifted lots under each policy ...", LOTS + 1);
    let incremental = run_policy(1e6, "recalibrate.incremental")?;
    let full = run_policy(0.0, "recalibrate.full_refit")?;

    let recals = incremental.health.recalibrated;
    // The calibration lot is itself a full refit under the same span, so
    // it contributes one representative sample to the per-refit mean.
    let refits = full.health.refitted;
    if recals < 3 {
        return Err(format!(
            "drift plan did not exercise the incremental tier: {:?}",
            incremental.health
        )
        .into());
    }
    if refits < 3 {
        return Err(format!("drift plan did not force full refits: {:?}", full.health).into());
    }

    let inc_ms = incremental.span_ms / recals as f64;
    let refit_ms = full.span_ms / refits as f64;
    let ratio = refit_ms / inc_ms;

    println!("recalibration cost per drift alarm (lot stream, {LOTS} lots + calibration):");
    println!(
        "  incremental  {:>4} actions  {:>9.2} ms total  {:>8.2} ms/action  (stream wall {:.0} ms)",
        recals, incremental.span_ms, inc_ms, incremental.wall_ms
    );
    println!(
        "  full refit   {:>4} actions  {:>9.2} ms total  {:>8.2} ms/action  (stream wall {:.0} ms)",
        refits, full.span_ms, refit_ms, full.wall_ms
    );
    println!("  cost ratio   full/incremental = {ratio:.1}x");

    if json {
        let payload = format!(
            "{{\n  \"bench\": \"drift\",\n  \"lots\": {},\n  \"recalibrated\": {},\n  \
             \"refitted\": {},\n  \"incremental_ms_per_action\": {:.3},\n  \
             \"full_refit_ms_per_action\": {:.3},\n  \"cost_ratio\": {:.3}\n}}\n",
            LOTS + 1,
            recals,
            refits,
            inc_ms,
            refit_ms,
            ratio,
        );
        std::fs::write("BENCH_drift.json", payload)?;
        println!("wrote BENCH_drift.json");
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::ExitCode::FAILURE
        }
    }
}
