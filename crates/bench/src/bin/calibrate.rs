//! Calibration sweep over the boundary operating point (γ, ν): prints the
//! full Table-1 row set per combination so the default configuration can be
//! pinned where the paper's shape holds.

use std::process::ExitCode;

use sidefp_core::{ExperimentConfig, PaperExperiment};

fn run() -> Result<(), Box<dyn std::error::Error>> {
    for bw in [0.3, 0.35, 0.4] {
        for noise in [0.004, 0.0045, 0.005, 0.006] {
            let mut config = ExperimentConfig::default();
            config.kde.bandwidth = Some(bw);
            config.meter.noise_relative = noise;
            let result = PaperExperiment::new(config)?.run()?;
            let cells: Vec<String> = result
                .table1
                .iter()
                .map(|r| {
                    format!(
                        "{}:{}|{}",
                        r.dataset,
                        r.counts.false_positives(),
                        r.counts.false_negatives()
                    )
                })
                .collect();
            println!(
                "bw {bw:<5} noise {noise:<6} {}  golden:{}|{}",
                cells.join("  "),
                result.golden_baseline.counts.false_positives(),
                result.golden_baseline.counts.false_negatives()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
