//! Ablation: 1-class SVM operating point (ν, γ) vs every boundary.
//!
//! ν controls how much training mass may be rejected (boundary tightness
//! from the inside); γ sets the kernel resolution (None = median
//! heuristic, the default).

use sidefp_core::tuning::tune_gamma;
use sidefp_core::{ExperimentConfig, PaperExperiment};

fn main() {
    println!("Ablation: one-class SVM nu and gamma");
    println!("nu     gamma   B1(FP|FN)  B3(FP|FN)  B5(FP|FN)  golden(FP|FN)");
    for nu in [0.02, 0.05, 0.1, 0.2] {
        for gamma in [None, Some(0.5), Some(2.0)] {
            let mut config = ExperimentConfig {
                kde_samples: 20_000,
                ..Default::default()
            };
            config.boundary.nu = nu;
            config.boundary.gamma = gamma;
            match PaperExperiment::new(config).and_then(|e| e.run()) {
                Ok(result) => {
                    let cell = |name: &str| {
                        result
                            .row(name)
                            .map(|r| {
                                format!(
                                    "{:>2}|{:<2}",
                                    r.counts.false_positives(),
                                    r.counts.false_negatives()
                                )
                            })
                            .unwrap_or_else(|| "-".into())
                    };
                    println!(
                        "{nu:<6} {:<7} {}      {}      {}      {:>2}|{:<2}",
                        gamma
                            .map(|g| g.to_string())
                            .unwrap_or_else(|| "median".into()),
                        cell("B1"),
                        cell("B3"),
                        cell("B5"),
                        result.golden_baseline.counts.false_positives(),
                        result.golden_baseline.counts.false_negatives(),
                    );
                }
                Err(e) => println!("{nu:<6} {gamma:?} failed: {e}"),
            }
        }
    }
    println!();
    println!("Expected: larger nu raises FN everywhere (tighter regions); explicit");
    println!("large gamma makes boundaries razor-thin around the manifold (FN spikes).");

    // Data-driven selection: tune gamma on S5 by hold-out validation and
    // compare against the hand-calibrated default (0.5).
    println!();
    println!("Hold-out tuning of B5's gamma (core::tuning::tune_gamma):");
    let config = ExperimentConfig {
        kde_samples: 20_000,
        ..Default::default()
    };
    match PaperExperiment::new(config.clone()).and_then(|e| e.run_with_artifacts()) {
        Ok(artifacts) => {
            let grid = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0];
            match tune_gamma(
                "B5",
                artifacts.silicon.s5.fingerprints(),
                &grid,
                &config.enhanced_boundary,
                0.25,
                config.seed,
            ) {
                Ok((boundary, report)) => {
                    let counts = sidefp_bench::or_die(boundary.evaluate(&artifacts.silicon.dutts));
                    println!(
                        "  selected gamma {} (hold-out acceptance {:.2}); tuned B5: FP {}/{} FN {}/{}",
                        report.gamma,
                        report.holdout_acceptance,
                        counts.false_positives(),
                        counts.infested_total(),
                        counts.false_negatives(),
                        counts.free_total(),
                    );
                    println!(
                        "  grid acceptance: {:?}",
                        report
                            .grid_acceptance
                            .iter()
                            .map(|a| (a * 100.0).round() / 100.0)
                            .collect::<Vec<_>>()
                    );
                }
                Err(e) => println!("  tuning failed: {e}"),
            }
        }
        Err(e) => println!("  experiment failed: {e}"),
    }
}
