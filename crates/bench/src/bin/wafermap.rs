//! Wafer-map rendering: the EDA-classic view of the Trojan test.
//!
//! Draws the DUTT lot as an SVG wafer map — one marker per die position,
//! colored by B5's verdict against the ground truth — and prints a coarse
//! ASCII map. Spatially clustered misclassifications would indicate a
//! within-wafer systematic the detection flow failed to absorb; a clean
//! run shows verdicts uncorrelated with position.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin wafermap [seed]
//! ```

use std::env;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;

use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_stats::DetectionLabel;

fn main() -> ExitCode {
    let seed = env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(ExperimentConfig::default().seed);
    let config = ExperimentConfig {
        seed,
        kde_samples: 20_000,
        ..Default::default()
    };
    let artifacts = match PaperExperiment::new(config).and_then(|e| e.run_with_artifacts()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dutts = &artifacts.silicon.dutts;
    let b5 = &artifacts.silicon.b5;

    // Per-device verdict vs. truth; only the Trojan-free version of each
    // die is mapped (all three versions share a position).
    #[derive(Clone, Copy, PartialEq)]
    enum Cell {
        CorrectAccept,
        FalseAlarm,
    }
    let mut dies: Vec<(f64, f64, Cell)> = Vec::new();
    for (i, row) in dutts.fingerprints().rows_iter().enumerate() {
        if dutts.labels()[i] != DetectionLabel::TrojanFree {
            continue;
        }
        let verdict = match b5.classify(row) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("classification failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (x, y) = dutts.positions()[i].normalized();
        dies.push((
            x,
            y,
            if verdict == DetectionLabel::TrojanFree {
                Cell::CorrectAccept
            } else {
                Cell::FalseAlarm
            },
        ));
    }

    // ASCII map: 21x21 grid over the unit disk.
    println!("Wafer map of Trojan-free verdicts (o = accepted, X = false alarm):");
    const GRID: i32 = 21;
    for gy in (0..GRID).rev() {
        let mut line = String::new();
        for gx in 0..GRID {
            let cx = (gx as f64 + 0.5) / GRID as f64 * 2.0 - 1.0;
            let cy = (gy as f64 + 0.5) / GRID as f64 * 2.0 - 1.0;
            if cx * cx + cy * cy > 1.0 {
                line.push(' ');
                continue;
            }
            let cell = dies.iter().find(|(x, y, _)| {
                (x - cx).abs() < 1.0 / GRID as f64 && (y - cy).abs() < 1.0 / GRID as f64
            });
            line.push(match cell {
                Some((_, _, Cell::FalseAlarm)) => 'X',
                Some((_, _, Cell::CorrectAccept)) => 'o',
                None => '.',
            });
        }
        println!("  {line}");
    }

    // SVG rendering.
    let mut svg = String::from(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"480\" height=\"480\" viewBox=\"-1.1 -1.1 2.2 2.2\">\n",
    );
    svg.push_str("<circle cx=\"0\" cy=\"0\" r=\"1.0\" fill=\"#f4f4f4\" stroke=\"#888\" stroke-width=\"0.01\"/>\n");
    for (x, y, cell) in &dies {
        let color = match cell {
            Cell::CorrectAccept => "#1e8f4e",
            Cell::FalseAlarm => "#d64545",
        };
        svg.push_str(&format!(
            "<circle cx=\"{x:.3}\" cy=\"{:.3}\" r=\"0.04\" fill=\"{color}\"/>\n",
            -y // SVG y grows downward
        ));
    }
    svg.push_str("</svg>\n");
    let out_dir = std::path::Path::new("target/fig4");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join(format!("wafermap_seed{seed}.svg"));
    if let Err(e) = fs::File::create(&path).and_then(|mut f| f.write_all(svg.as_bytes())) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }

    let alarms = dies
        .iter()
        .filter(|(_, _, c)| *c == Cell::FalseAlarm)
        .count();
    println!();
    println!(
        "{} dies mapped, {} false alarms; SVG written to {}",
        dies.len(),
        alarms,
        path.display()
    );
    println!("Spatially clustered X's would indicate a within-wafer systematic the");
    println!("flow failed to absorb (e.g. a radial gradient outside the PCM's view).");
    ExitCode::SUCCESS
}
