//! Pipeline performance harness: times the reduced end-to-end experiment
//! at threads=1 versus the default worker pool and reports the speedup,
//! plus a per-stage wall-clock breakdown of the single-threaded run.
//!
//! Usage:
//!
//! ```text
//! perf              # print the comparison
//! perf --json       # additionally dump BENCH_pipeline.json
//! perf --trace      # additionally dump BENCH_pipeline_trace.jsonl
//! perf --score-only # only the scoring phase (one fit, no refit noise)
//! perf --scaling    # per-stage speedup curves over a worker ladder
//!                   # (writes BENCH_scaling.json)
//! ```
//!
//! On a single-core host the pooled run is the same configuration as the
//! threads=1 run, so `--json` records `"speedup": null` with an
//! explanatory `"speedup_note"` instead of publishing load noise as a
//! parallel speedup, and `--scaling`'s ladder collapses to `[1]` — which
//! still pins the guided scheduler's zero-overhead threads=1 delegation
//! (every committed speedup curve must open at exactly 1.0).
//!
//! Each timed run records into its own [`sidefp_core::RunContext`], not
//! process-global state. The per-stage breakdown is the per-stage
//! minimum across all single-threaded reps (noise is one-sided); the
//! `--trace` JSONL dump comes from the best rep's context.
//!
//! The scoring phase (`score.*` stages) always runs: it fits one
//! [`sidefp_core::FittedModel`] and times repeated batch scores against
//! it, so its per-stage minima carry no refit noise. `--score-only`
//! skips the pipeline reps entirely for fast local iteration on the
//! scoring paths (no BENCH_pipeline.json is written in that mode — the
//! committed baseline needs the full stage set).
//!
//! Build with `--release`; the debug profile distorts the hot paths.
//! Build with `--features count-alloc` to additionally report heap
//! allocation counts for the steady-state KDE/OCSVM scoring loops (the
//! counting global allocator slows the wall-clock numbers slightly, so
//! the two measurements are behind separate invocations).

use std::time::Instant;

use sidefp_core::{
    BatchScorer, ExperimentConfig, FittedModel, PaperExperiment, ParallelismConfig, RunContext,
};

#[cfg(feature = "count-alloc")]
mod alloc_count {
    //! A counting global allocator: every `alloc`/`realloc` bumps a
    //! process-wide counter, so a scope can assert how many heap blocks
    //! a steady-state loop requested.
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub struct CountingAllocator;

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Number of allocation requests since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Runs `f` and returns how many heap blocks it requested.
    pub fn count_in<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = allocations();
        let value = f();
        (value, allocations() - before)
    }
}

/// Steady-state allocation counts for the scoring hot loops.
struct AllocReport {
    kde_density_rows: u64,
    ocsvm_decision_rows: u64,
    score_into_rows: u64,
    packed_gemm: u64,
}

/// Measures heap blocks requested by the KDE density and OCSVM decision
/// batch-scoring loops once their workspaces are warm.
#[cfg(feature = "count-alloc")]
fn measure_steady_state_allocs() -> AllocReport {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sidefp_linalg::{Matrix, Workspace};
    use sidefp_stats::kde::{AdaptiveKde, KdeConfig};
    use sidefp_stats::{Kernel, OneClassSvm, OneClassSvmConfig};

    let mut rng = StdRng::seed_from_u64(7);
    let data = Matrix::from_fn(200, 6, |_, _| rng.random_range(-1.0..1.0));
    let queries = Matrix::from_fn(64, 6, |_, _| rng.random_range(-1.0..1.0));

    let kde = sidefp_bench::or_die(AdaptiveKde::fit(&data, &KdeConfig::default()));
    let svm = sidefp_bench::or_die(OneClassSvm::fit(
        &data,
        &OneClassSvmConfig {
            nu: 0.1,
            kernel: Kernel::Rbf { gamma: 0.5 },
            ..Default::default()
        },
    ));

    let mut ws = Workspace::new();
    let mut out = vec![0.0; queries.nrows()];

    // Warm the workspace pool: the first call may allocate its scratch.
    sidefp_bench::or_die(kde.density_rows_into(&queries, &mut ws, &mut out));
    sidefp_bench::or_die(svm.decision_rows_into(&queries, &mut out));

    let (_, kde_allocs) = alloc_count::count_in(|| {
        for _ in 0..8 {
            sidefp_bench::or_die(kde.density_rows_into(&queries, &mut ws, &mut out));
        }
    });
    let (_, svm_allocs) = alloc_count::count_in(|| {
        for _ in 0..8 {
            sidefp_bench::or_die(svm.decision_rows_into(&queries, &mut out));
        }
    });

    // The artifact-driven per-device scoring loop: fit once, then count
    // heap blocks across a steady-state stretch of `score_into` calls.
    let model = FittedModel::fit(&ExperimentConfig {
        chips: 10,
        mc_samples: 40,
        kde_samples: 1200,
        ..Default::default()
    });
    let model = sidefp_bench::or_die(model);
    let mut scorer = BatchScorer::new(&model);
    let (fps, _) = model.synthesize_batch(1, 64);
    let mut decisions = vec![0.0; scorer.boundaries().len()];
    sidefp_bench::or_die(scorer.score_into(fps.row(0), &mut decisions));
    let (_, score_allocs) = alloc_count::count_in(|| {
        for i in 0..fps.nrows() {
            sidefp_bench::or_die(scorer.score_into(fps.row(i), &mut decisions));
        }
    });

    // The packed-GEMM panel buffers live in a thread-local workspace:
    // once a shape has been through it, repeated products request zero
    // heap blocks (the output matrix is caller-owned here, so the whole
    // steady-state loop must count 0).
    let ga = Matrix::from_fn(96, 80, |i, j| (i as f64 - j as f64) * 0.01);
    let gb = Matrix::from_fn(80, 72, |i, j| (i + 2 * j) as f64 * 0.005);
    let mut gout = Matrix::zeros(96, 72);
    sidefp_linalg::gemm::gemm_nn(&ga, &gb, &mut gout);
    let (_, gemm_allocs) = alloc_count::count_in(|| {
        for _ in 0..8 {
            sidefp_linalg::gemm::gemm_nn(&ga, &gb, &mut gout);
        }
    });

    AllocReport {
        kde_density_rows: kde_allocs,
        ocsvm_decision_rows: svm_allocs,
        score_into_rows: score_allocs,
        packed_gemm: gemm_allocs,
    }
}

/// Wall-clock, resolved worker count and observability context of one
/// full reduced run (the context carries the per-stage timings and the
/// trace-event ring).
fn time_run(threads: usize, seed: u64) -> (f64, usize, RunContext) {
    let config = ExperimentConfig {
        seed,
        chips: 12,
        mc_samples: 60,
        kde_samples: 8000,
        parallelism: ParallelismConfig {
            threads,
            deterministic: true,
        },
        ..Default::default()
    };
    let experiment = sidefp_bench::or_die(PaperExperiment::new(config));
    let ctx = RunContext::new();
    let start = Instant::now();
    let artifacts = sidefp_bench::or_die(experiment.run_in_context(&ctx));
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    let result = &artifacts.result;
    if result.table1.len() != 5 {
        eprintln!(
            "error: expected 5 Table-1 rows, got {}",
            result.table1.len()
        );
        std::process::exit(1);
    }
    if !result.health.is_clean() {
        eprintln!("note: run degraded\n{}", result.health.render());
    }
    (elapsed, result.resolved_threads, ctx)
}

/// Fits one model and times `reps` batch scores against it (threads=1,
/// one warm-up batch). Returns the per-stage minima of the `score.*`
/// spans and the best whole-batch wall-clock.
type ScoringReport = (Vec<(String, f64)>, f64);

fn time_scoring(
    reps: usize,
    batch_devices: usize,
) -> Result<ScoringReport, Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        seed: 2,
        chips: 12,
        mc_samples: 60,
        kde_samples: 8000,
        parallelism: ParallelismConfig {
            threads: 1,
            deterministic: true,
        },
        ..Default::default()
    };
    let model = FittedModel::fit(&config)?;
    let mut scorer = BatchScorer::new(&model);
    let (fps, pcms) = model.synthesize_batch(99, batch_devices);
    // Warm-up batch: first call grows the workspace pool.
    scorer.score_batch(&fps, &pcms, &RunContext::new())?;
    let mut stage_min: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps {
        let ctx = RunContext::new();
        let start = Instant::now();
        scorer.score_batch(&fps, &pcms, &ctx)?;
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1000.0);
        for (name, ms) in ctx.timing_snapshot() {
            stage_min
                .entry(name)
                .and_modify(|m| *m = m.min(ms))
                .or_insert(ms);
        }
    }
    Ok((stage_min.into_iter().collect(), best_ms))
}

/// `--scaling`: times the reduced pipeline at a ladder of worker counts
/// and writes per-stage speedup curves (relative to threads=1) into
/// `BENCH_scaling.json`. The ladder is `[1, 2, 4, 8]` clamped to the
/// host's core count; on a single-core box it collapses to `[1]`, which
/// still pins the guided scheduler's zero-overhead sequential delegation
/// — the committed curve must open at exactly 1.0 for every stage.
fn run_scaling(cores: usize) -> Result<(), Box<dyn std::error::Error>> {
    let reps = 3;
    let ladder: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= cores)
        .collect();

    // Warm-up run so allocator and page-cache effects don't bias the
    // threads=1 reference rung.
    let _ = time_run(1, 1);

    let mut totals: Vec<f64> = Vec::with_capacity(ladder.len());
    let mut tables: Vec<std::collections::BTreeMap<String, f64>> = Vec::with_capacity(ladder.len());
    for (li, &t) in ladder.iter().enumerate() {
        println!(
            "scaling rung {}/{}: threads={t} ({reps} reps)",
            li + 1,
            ladder.len()
        );
        let mut best = f64::INFINITY;
        let mut stage_min: std::collections::BTreeMap<String, f64> =
            std::collections::BTreeMap::new();
        for r in 0..reps {
            let (ms, _, ctx) = time_run(t, 2 + r as u64);
            best = best.min(ms);
            for (name, stage_ms) in ctx.timing_snapshot() {
                stage_min
                    .entry(name)
                    .and_modify(|m| *m = m.min(stage_ms))
                    .or_insert(stage_ms);
            }
        }
        totals.push(best);
        tables.push(stage_min);
    }

    // Only stages timed at every rung get a curve — the stage set is
    // thread-count-independent in practice, so a divergence would mean
    // the instrumentation itself changed mid-sweep.
    let stage_names: Vec<String> = tables[0]
        .keys()
        .filter(|name| tables.iter().all(|tbl| tbl.contains_key(*name)))
        .cloned()
        .collect();

    let fmt = |v: &[f64]| -> String {
        let parts: Vec<String> = v.iter().map(|x| format!("{x:.3}")).collect();
        format!("[{}]", parts.join(", "))
    };
    let counts_str = {
        let parts: Vec<String> = ladder.iter().map(|t| t.to_string()).collect();
        format!("[{}]", parts.join(", "))
    };
    let total_speedup: Vec<f64> = totals.iter().map(|ms| totals[0] / ms).collect();

    println!("scaling (chips 12, mc 60, kde 8000; per-rung min over {reps} reps):");
    println!("  threads      {counts_str}");
    println!("  total ms     {}", fmt(&totals));
    println!("  total x      {}", fmt(&total_speedup));
    let mut stage_ms_lines: Vec<String> = Vec::with_capacity(stage_names.len());
    let mut stage_speedup_lines: Vec<String> = Vec::with_capacity(stage_names.len());
    for name in &stage_names {
        let ms: Vec<f64> = tables.iter().map(|tbl| tbl[name]).collect();
        let speedup: Vec<f64> = ms.iter().map(|v| ms[0] / v).collect();
        println!("  {name:<16} {}  {}", fmt(&ms), fmt(&speedup));
        stage_ms_lines.push(format!("    \"{name}\": {}", fmt(&ms)));
        stage_speedup_lines.push(format!("    \"{name}\": {}", fmt(&speedup)));
    }

    let payload = format!(
        "{{\n  \"bench\": \"scaling\",\n  \"cores\": {cores},\n  \"reps\": {reps},\n  \
         \"thread_counts\": {counts_str},\n  \
         \"total_ms\": {},\n  \"total_speedup\": {},\n  \
         \"stages_ms\": {{\n{}\n  }},\n  \"stages_speedup\": {{\n{}\n  }}\n}}\n",
        fmt(&totals),
        fmt(&total_speedup),
        stage_ms_lines.join(",\n"),
        stage_speedup_lines.join(",\n"),
    );
    std::fs::write("BENCH_scaling.json", payload)?;
    println!("wrote BENCH_scaling.json");
    Ok(())
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let json = std::env::args().any(|a| a == "--json");
    let trace = std::env::args().any(|a| a == "--trace");
    let score_only = std::env::args().any(|a| a == "--score-only");
    let scaling = std::env::args().any(|a| a == "--scaling");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if scaling {
        return run_scaling(cores);
    }

    // The scoring phase reuses ONE fitted model across all reps: the
    // score.* stage minima measure pure scoring, never refit noise.
    let score_batch_devices = 20_000;
    let (score_stages, score_batch_ms) = time_scoring(5, score_batch_devices)?;

    if score_only {
        println!("scoring (batch of {score_batch_devices} devices, best of 5):");
        println!("  batch           {score_batch_ms:8.1} ms");
        for (name, ms) in &score_stages {
            println!("  {name:<16} {ms:8.2} ms");
        }
        if json {
            println!("note: --score-only writes no BENCH_pipeline.json (needs the full stage set)");
        }
        #[cfg(feature = "count-alloc")]
        {
            let report = measure_steady_state_allocs();
            println!("steady-state allocations:");
            println!("  score_into          {:6}", report.score_into_rows);
        }
        return Ok(());
    }

    // Warm-up run so allocator and page-cache effects don't bias the
    // single-threaded baseline.
    let _ = time_run(1, 1);

    // Wall-clock on a shared box is one-sided noise: load only ever slows
    // a rep down, so the minimum over several reps is the stable estimate.
    let reps = 5;
    let single_runs: Vec<(f64, usize, RunContext)> =
        (0..reps).map(|r| time_run(1, 2 + r)).collect();
    let (single_ms, _, single_ctx) = single_runs
        .iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(ms, threads, ctx)| (*ms, *threads, ctx))
        .ok_or("at least one rep")?;
    let (pooled_ms, resolved_threads, _) = (0..reps)
        .map(|r| time_run(0, 2 + r))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .ok_or("at least one rep")?;
    let speedup = single_ms / pooled_ms;
    // Per-stage minimum across ALL single-threaded reps, not the stages
    // of the best-total rep: a rep that wins on total wall-clock can
    // still have been preempted inside one stage, and that one noisy
    // entry is exactly what trips a share-based regression gate.
    let mut stage_min: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for (_, _, ctx) in &single_runs {
        for (name, ms) in ctx.timing_snapshot() {
            stage_min
                .entry(name)
                .and_modify(|m| *m = m.min(ms))
                .or_insert(ms);
        }
    }
    // Merge the scoring-phase stages into the table: the committed
    // baseline's stage set must match what a fresh default run produces,
    // so the score.* entries are always present, not opt-in.
    for (name, ms) in &score_stages {
        stage_min
            .entry(name.clone())
            .and_modify(|m| *m = m.min(*ms))
            .or_insert(*ms);
    }
    let stages: Vec<(String, f64)> = stage_min.into_iter().collect();

    println!("pipeline (chips 12, mc 60, kde 8000), best of {reps}:");
    println!("  threads=1       {single_ms:8.1} ms");
    println!("  threads=auto({cores}) {pooled_ms:8.1} ms  ({resolved_threads} worker(s))");
    if cores == 1 {
        println!("  speedup         n/a (single-core host)");
    } else {
        println!("  speedup         {speedup:8.2}x");
    }
    println!("scoring (batch of {score_batch_devices} devices, best of 5): {score_batch_ms:.1} ms");
    println!("stages (threads=1, per-stage min over {reps} reps; score.* from the scoring phase):");
    // The untimed remainder is a pipeline-run number: score.* stages are
    // measured against the reused fitted model, outside `single_ms`.
    let accounted: f64 = stages
        .iter()
        .filter(|(name, _)| !name.starts_with("score."))
        .map(|(_, ms)| ms)
        .sum();
    for (name, ms) in &stages {
        println!("  {name:<16} {ms:8.2} ms");
    }
    println!("  {:<16} {:8.2} ms", "(untimed)", single_ms - accounted);

    #[cfg(feature = "count-alloc")]
    let allocs = Some(measure_steady_state_allocs());
    #[cfg(not(feature = "count-alloc"))]
    let allocs: Option<AllocReport> = None;
    if let Some(report) = &allocs {
        println!("steady-state allocations (8 batch-scoring calls each):");
        println!("  kde.density_rows    {:6}", report.kde_density_rows);
        println!("  ocsvm.decision_rows {:6}", report.ocsvm_decision_rows);
        println!("  score_into          {:6}", report.score_into_rows);
        println!("  packed_gemm         {:6}", report.packed_gemm);
        if report.packed_gemm != 0 {
            return Err(format!(
                "steady-state packed GEMM requested {} heap blocks (expected 0)",
                report.packed_gemm
            )
            .into());
        }
    }

    if json {
        let stage_lines: Vec<String> = stages
            .iter()
            .map(|(name, ms)| format!("    \"{name}\": {ms:.2}"))
            .collect();
        let alloc_block = match &allocs {
            Some(report) => format!(
                ",\n  \"steady_state_allocs\": {{\n    \
                 \"kde_density_rows\": {},\n    \
                 \"ocsvm_decision_rows\": {},\n    \
                 \"score_into_rows\": {},\n    \
                 \"packed_gemm\": {}\n  }}",
                report.kde_density_rows,
                report.ocsvm_decision_rows,
                report.score_into_rows,
                report.packed_gemm
            ),
            None => String::new(),
        };
        // On a single-core host the pooled run is the same configuration
        // as the threads=1 run; publishing their ratio would record load
        // noise as a parallel speedup, so the field is null with a note.
        let speedup_field = if cores == 1 {
            "\"speedup\": null,\n  \"speedup_note\": \"single-core host: pooled run equals \
             threads=1, no parallel speedup is measurable\","
                .to_string()
        } else {
            format!("\"speedup\": {speedup:.3},")
        };
        let payload = format!(
            "{{\n  \"bench\": \"pipeline\",\n  \"cores\": {cores},\n  \
             \"resolved_threads\": {resolved_threads},\n  \
             \"threads1_ms\": {single_ms:.2},\n  \"default_ms\": {pooled_ms:.2},\n  \
             {speedup_field}\n  \"stages_ms\": {{\n{}\n  }}{alloc_block}\n}}\n",
            stage_lines.join(",\n")
        );
        std::fs::write("BENCH_pipeline.json", payload)?;
        println!("wrote BENCH_pipeline.json");
    }

    if trace {
        std::fs::write("BENCH_pipeline_trace.jsonl", single_ctx.trace_jsonl())?;
        println!(
            "wrote BENCH_pipeline_trace.jsonl ({} events, {} dropped)",
            single_ctx.trace_len(),
            single_ctx.trace_dropped()
        );
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::ExitCode::FAILURE
        }
    }
}
