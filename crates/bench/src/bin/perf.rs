//! Pipeline performance harness: times the reduced end-to-end experiment
//! at threads=1 versus the default worker pool and reports the speedup.
//!
//! Usage:
//!
//! ```text
//! perf            # print the comparison
//! perf --json     # additionally dump BENCH_pipeline.json
//! ```
//!
//! Run with `--release`; the debug profile distorts the hot paths.

use std::time::Instant;

use sidefp_core::{ExperimentConfig, PaperExperiment, ParallelismConfig};

/// Wall-clock of one full reduced run at the given worker count.
fn time_run(threads: usize, seed: u64) -> f64 {
    let config = ExperimentConfig {
        seed,
        chips: 12,
        mc_samples: 60,
        kde_samples: 8000,
        parallelism: ParallelismConfig {
            threads,
            deterministic: true,
        },
        ..Default::default()
    };
    let experiment = PaperExperiment::new(config).expect("valid config");
    let start = Instant::now();
    let result = experiment.run().expect("experiment runs");
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(result.table1.len(), 5);
    if !result.health.is_clean() {
        eprintln!("note: run degraded\n{}", result.health.render());
    }
    elapsed
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up run so allocator and page-cache effects don't bias the
    // single-threaded baseline.
    let _ = time_run(1, 1);

    let reps = 3;
    let best = |threads: usize| {
        (0..reps)
            .map(|r| time_run(threads, 2 + r))
            .fold(f64::INFINITY, f64::min)
    };
    let single_ms = best(1);
    let pooled_ms = best(0);
    let speedup = single_ms / pooled_ms;

    println!("pipeline (chips 12, mc 60, kde 8000), best of {reps}:");
    println!("  threads=1       {single_ms:8.1} ms");
    println!("  threads=auto({cores}) {pooled_ms:8.1} ms");
    println!("  speedup         {speedup:8.2}x");

    if json {
        let payload = format!(
            "{{\n  \"bench\": \"pipeline\",\n  \"cores\": {cores},\n  \
             \"threads1_ms\": {single_ms:.2},\n  \"default_ms\": {pooled_ms:.2},\n  \
             \"speedup\": {speedup:.3}\n}}\n"
        );
        std::fs::write("BENCH_pipeline.json", payload).expect("write BENCH_pipeline.json");
        println!("wrote BENCH_pipeline.json");
    }
}
