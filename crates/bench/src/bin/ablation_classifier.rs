//! Ablation: the one-class classifier family behind the trusted region.
//!
//! The paper names the classifier generically ("neural network, support
//! vector machine, etc.") and uses a 1-class SVM. This ablation compares
//! the SVM against the natural alternative — thresholding the adaptive KDE
//! itself (density level set) — on the S5 population.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin ablation_classifier
//! ```

use std::process::ExitCode;

use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_stats::kde::{DensityClassifier, KdeConfig};
use sidefp_stats::DetectionLabel;

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        kde_samples: 20_000,
        ..Default::default()
    };
    let artifacts = PaperExperiment::new(config.clone())?.run_with_artifacts()?;
    let dutts = &artifacts.silicon.dutts;

    println!("Ablation: one-class classifier family on the S5 population");
    println!();
    println!("classifier                      missed-Trojans  false-alarms");

    // Reference: the pipeline's 1-class SVM (B5).
    let b5_counts = artifacts.silicon.b5.evaluate(dutts)?;
    println!(
        "1-class SVM (paper, B5)         {:>8}/{}     {:>8}/{}",
        b5_counts.false_positives(),
        b5_counts.infested_total(),
        b5_counts.false_negatives(),
        b5_counts.free_total()
    );

    // Alternative: KDE density level set at the same nu, on a subsample of
    // S5 (density queries are O(n) per point).
    let s5 = artifacts.silicon.s5.fingerprints();
    let sub: Vec<usize> = (0..s5.nrows())
        .step_by((s5.nrows() / 1500).max(1))
        .collect();
    let train = s5.select_rows(&sub);
    for nu in [0.02, 0.05, 0.1] {
        match DensityClassifier::fit(&train, &KdeConfig::default(), nu) {
            Ok(clf) => {
                let mut missed = 0;
                let mut alarms = 0;
                let mut infested = 0;
                let mut free = 0;
                for (i, row) in dutts.fingerprints().rows_iter().enumerate() {
                    let inlier = clf.is_inlier(row).unwrap_or(false);
                    match dutts.labels()[i] {
                        DetectionLabel::TrojanInfested => {
                            infested += 1;
                            if inlier {
                                missed += 1;
                            }
                        }
                        DetectionLabel::TrojanFree => {
                            free += 1;
                            if !inlier {
                                alarms += 1;
                            }
                        }
                    }
                }
                println!(
                    "KDE level set (nu = {nu:<4})       {missed:>8}/{infested}     {alarms:>8}/{free}"
                );
            }
            Err(e) => println!("KDE level set (nu = {nu}): failed: {e}"),
        }
    }
    println!();
    println!("Both families learn from the same S5 samples; the SVM boundary is a");
    println!("smoothed version of the density level set, so their verdicts should");
    println!("agree closely — evidence the result is about the S5 population, not");
    println!("the classifier choice (the paper's 'e.g.' is justified).");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
