//! Ablation: Monte Carlo sample count `n` of the pre-manufacturing stage.
//!
//! The paper used n = 100. Fewer samples degrade the PCM→fingerprint
//! regression and thin the S4 population; more samples buy diminishing
//! returns.

use sidefp_core::{ExperimentConfig, PaperExperiment};

fn main() {
    println!("Ablation: Monte Carlo sample count");
    println!("n      B3(FP|FN)  B4(FP|FN)  B5(FP|FN)");
    for n in [25, 50, 100, 200, 400] {
        let config = ExperimentConfig {
            mc_samples: n,
            kde_samples: 20_000,
            ..Default::default()
        };
        match PaperExperiment::new(config).and_then(|e| e.run()) {
            Ok(result) => {
                let cell = |name: &str| {
                    result
                        .row(name)
                        .map(|r| {
                            format!(
                                "{:>2}|{:<2}",
                                r.counts.false_positives(),
                                r.counts.false_negatives()
                            )
                        })
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "{n:<6} {}      {}      {}",
                    cell("B3"),
                    cell("B4"),
                    cell("B5")
                );
            }
            Err(e) => println!("{n:<6} failed: {e}"),
        }
    }
    println!();
    println!("Expected: metrics stabilize around the paper's n = 100; very small n");
    println!("hurts the regression and hence every silicon-anchored boundary.");
}
