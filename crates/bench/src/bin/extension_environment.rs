//! Extension experiment: test-floor environment mismatch.
//!
//! The trusted simulation model assumes the nominal environment (25 C,
//! 3.3 V); the tester floor may run hotter. Both the side-channel
//! fingerprints AND the PCMs shift with temperature — the question is
//! whether the PCM anchoring absorbs a mismatch it was never told about.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin extension_environment
//! ```

use std::process::ExitCode;

use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_silicon::environment::Environment;

fn run() -> Result<(), Box<dyn std::error::Error>> {
    println!("Environment mismatch: simulation at 25 C, tester floor swept");
    println!();
    println!("tester      B3(FP|FN)  B4(FP|FN)  B5(FP|FN)  golden(FP|FN)");
    for temp in [25.0, 35.0, 50.0, 70.0, 85.0] {
        let config = ExperimentConfig {
            test_environment: Environment::at_temperature(temp)?,
            kde_samples: 20_000,
            ..Default::default()
        };
        match PaperExperiment::new(config).and_then(|e| e.run()) {
            Ok(result) => {
                let cell = |name: &str| {
                    result
                        .row(name)
                        .map(|r| {
                            format!(
                                "{:>2}|{:<2}",
                                r.counts.false_positives(),
                                r.counts.false_negatives()
                            )
                        })
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "{temp:>5.0} C     {}      {}      {}      {:>2}|{:<2}",
                    cell("B3"),
                    cell("B4"),
                    cell("B5"),
                    result.golden_baseline.counts.false_positives(),
                    result.golden_baseline.counts.false_negatives(),
                );
            }
            Err(e) => println!("{temp:>5.0} C     failed: {e}"),
        }
    }
    println!();
    println!("Because a hot die is slower in BOTH the PCM and the transmitter, the");
    println!("silicon-anchored boundaries absorb much of a uniform temperature");
    println!("mismatch: the tester's hot PCM readings shift the predicted trusted");
    println!("region in the same direction as the hot fingerprints. The golden");
    println!("baseline is trained and evaluated on the same floor, so it is immune");
    println!("by construction. Residual degradation comes from the temperature");
    println!("path (vth + mobility jointly) bending the delay-to-power relationship");
    println!("differently than process variation does.");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
