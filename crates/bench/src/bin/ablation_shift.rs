//! Ablation: how fast do the simulation-only boundaries (B1/B2) fail and
//! the silicon-anchored ones (B3–B5) survive as the foundry drifts away
//! from the trusted simulation model?
//!
//! Sweeps a scale factor on the default operating-point shift from 0 (no
//! drift — the simulation is perfect) to 1.25x the calibrated drift.

use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_silicon::foundry::ProcessShift;
use sidefp_silicon::params::ProcessFactor;

fn scaled_shift(scale: f64) -> ProcessShift {
    ProcessShift::on_factor(ProcessFactor::ImplantN, 4.2 * scale)
        .and(ProcessFactor::ImplantP, 3.7 * scale)
        .and(ProcessFactor::Oxide, -2.85 * scale)
        .and(ProcessFactor::Litho, 2.85 * scale)
        .and(ProcessFactor::Beol, 1.5 * scale)
}

fn main() {
    println!("Ablation: foundry drift magnitude vs detection metrics");
    println!("shift-scale  B1(FP|FN)  B2(FP|FN)  B3(FP|FN)  B4(FP|FN)  B5(FP|FN)");
    for scale in [0.0, 0.25, 0.5, 0.75, 1.0, 1.25] {
        let config = ExperimentConfig {
            process_shift: scaled_shift(scale),
            kde_samples: 20_000,
            ..Default::default()
        };
        match PaperExperiment::new(config).and_then(|e| e.run()) {
            Ok(result) => {
                let cells: Vec<String> = result
                    .table1
                    .iter()
                    .map(|r| {
                        format!(
                            "{:>2}|{:<2}",
                            r.counts.false_positives(),
                            r.counts.false_negatives()
                        )
                    })
                    .collect();
                println!("{scale:<12} {}", cells.join("      "));
            }
            Err(e) => println!("{scale:<12} failed: {e}"),
        }
    }
    println!();
    println!("Expected shape: at scale 0 every boundary works (the simulation IS the");
    println!("fab); as drift grows, B1/B2 collapse to FN 40/40 while B3-B5 stay");
    println!("anchored through the PCMs.");
}
