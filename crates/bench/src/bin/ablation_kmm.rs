//! Ablation: kernel-mean-matching hyper-parameters (weight cap `B`,
//! mean-band `ε`, iteration budget) vs the calibrated boundary B4/B5.
//!
//! With too few mean-shift iterations the simulated PCM population never
//! reaches the silicon operating point and B4/B5 stay mis-centered.

use sidefp_core::{ExperimentConfig, PaperExperiment};

fn main() {
    println!("Ablation: KMM weight cap B, band eps and mean-shift iterations");
    println!("B       eps    iters  B4(FP|FN)  B5(FP|FN)");
    for (upper, band, iters) in [
        (1000.0, None, 1),
        (1000.0, None, 2),
        (1000.0, None, 4),
        (1000.0, None, 12),
        (10.0, None, 12),
        (3.0, None, 12),
        (1000.0, Some(0.2), 12),
        (1000.0, Some(0.05), 12),
    ] {
        let mut config = ExperimentConfig {
            kde_samples: 20_000,
            kmm_iterations: iters,
            ..Default::default()
        };
        config.kmm.upper = upper;
        config.kmm.band = band;
        match PaperExperiment::new(config).and_then(|e| e.run()) {
            Ok(result) => {
                let cell = |name: &str| {
                    result
                        .row(name)
                        .map(|r| {
                            format!(
                                "{:>2}|{:<2}",
                                r.counts.false_positives(),
                                r.counts.false_negatives()
                            )
                        })
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "{upper:<7} {:<6} {iters:<6} {}      {}",
                    band.map(|b| b.to_string()).unwrap_or_else(|| "auto".into()),
                    cell("B4"),
                    cell("B5")
                );
            }
            Err(e) => println!("{upper:<7} ? {iters:<6} failed: {e}"),
        }
    }
    println!();
    println!("Expected: B4/B5 improve with iteration budget (the drift exceeds the");
    println!("single-round reach); tight weight caps or bands slow convergence.");
}
