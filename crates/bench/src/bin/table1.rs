//! Regenerates **Table 1** of the paper: FP/FN of boundaries B1–B5 on the
//! 120 devices (40 Trojan-free, 80 Trojan-infested), plus the golden-chip
//! baseline row.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin table1 [seed] [--trace]
//! ```
//!
//! `--trace` additionally dumps the run's structured trace events (stage
//! boundaries, solver rescues, quarantine decisions) as JSONL to
//! `target/table1_trace.jsonl`.

use std::env;
use std::process::ExitCode;

use sidefp_core::stages::trojan_test;
use sidefp_core::{ExperimentConfig, PaperExperiment, RunContext};
use sidefp_stats::bootstrap::proportion_interval;
use sidefp_stats::mmd_test::mmd_permutation_test;
use sidefp_stats::roc::RocCurve;

fn main() -> ExitCode {
    let mut seed = ExperimentConfig::default().seed;
    let mut trace = false;
    for arg in env::args().skip(1) {
        if arg == "--trace" {
            trace = true;
        } else if let Ok(s) = arg.parse::<u64>() {
            seed = s;
        }
    }
    let config = ExperimentConfig {
        seed,
        ..Default::default()
    };
    println!(
        "Paper experiment: {} chips x 3 versions = {} DUTTs, {} MC samples, {} KDE samples, seed {}",
        config.chips,
        config.device_count(),
        config.mc_samples,
        config.kde_samples,
        seed
    );

    let experiment = match PaperExperiment::new(config) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("configuration error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = RunContext::new();
    let artifacts = match sidefp_bench::timed("table1", || experiment.run_in_context(&ctx)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!();
    println!("{}", artifacts.result.render_table1());
    // `render_table1` only appends the health block when something
    // degraded; always print the one-line summary so a clean run is
    // visibly clean.
    if artifacts.result.health.is_clean() {
        println!("{}", artifacts.result.health.render());
    }
    println!("worker threads: {}", artifacts.result.resolved_threads);

    if trace {
        let path = "target/table1_trace.jsonl";
        if std::fs::create_dir_all("target").is_ok()
            && std::fs::write(path, ctx.trace_jsonl()).is_ok()
        {
            println!(
                "Trace events written to {path} ({} events, {} dropped)",
                ctx.trace_len(),
                ctx.trace_dropped()
            );
        }
    }

    // ROC analysis: the full decision functions, beyond the operating point.
    println!("ROC analysis (AUC / trusted-coverage at zero missed Trojans):");
    let dutts = &artifacts.silicon.dutts;
    let boundaries: [(&str, &sidefp_core::TrustedBoundary); 5] = [
        ("B1", &artifacts.premanufacturing.b1),
        ("B2", &artifacts.premanufacturing.b2),
        ("B3", &artifacts.silicon.b3),
        ("B4", &artifacts.silicon.b4),
        ("B5", &artifacts.silicon.b5),
    ];
    for (name, boundary) in boundaries {
        let scores: Result<Vec<_>, _> = dutts
            .fingerprints()
            .rows_iter()
            .enumerate()
            .map(|(i, row)| {
                boundary
                    .decision(row)
                    .map(|score| (score, dutts.labels()[i]))
            })
            .collect();
        match scores.and_then(|s| RocCurve::from_scores(s).map_err(Into::into)) {
            Ok(roc) => println!(
                "  {name}: AUC {:.3}   TPR@FPR=0 {:.2}",
                roc.auc(),
                roc.tpr_at_zero_fpr()
            ),
            Err(e) => println!("  {name}: ROC failed: {e}"),
        }
    }
    println!();

    // Statistical certification of S5 vs. the measured populations: the
    // quantitative version of Figure 4(f)'s visual overlap.
    println!("Two-sample MMD against the S5 population (squared MMD; smaller = closer):");
    let s5 = artifacts.silicon.s5.fingerprints();
    // Subsample S5 to keep the permutation Gram matrix small.
    let s5_small = s5.select_rows(&(0..200.min(s5.nrows())).collect::<Vec<_>>());
    let free = dutts.free_fingerprints();
    let variant_rows = |tag: &str| {
        let idx: Vec<usize> = (0..dutts.len())
            .filter(|i| dutts.variants()[*i] == tag)
            .collect();
        dutts.fingerprints().select_rows(&idx)
    };
    for (label, sample) in [
        ("Trojan-free", free),
        ("amplitude Trojans", variant_rows("amplitude")),
        ("frequency Trojans", variant_rows("frequency")),
    ] {
        match mmd_permutation_test(&s5_small, &sample, None, 200, seed) {
            Ok(test) => println!(
                "  S5 vs {label:<18} MMD^2 {:.4}  (permutation p = {:.3})",
                test.statistic, test.p_value,
            ),
            Err(e) => println!("  S5 vs {label}: test failed: {e}"),
        }
    }
    println!("  (S5 deliberately over-covers the Trojan-free population — KDE tails —");
    println!("   so a small positive MMD is expected; the Trojan clusters sit an order");
    println!("   of magnitude farther.)");
    println!();

    // Bootstrap confidence intervals on B5's rates (the paper reports
    // point counts only).
    let b5_scores: Vec<(bool, bool)> = dutts
        .fingerprints()
        .rows_iter()
        .enumerate()
        .map(|(i, row)| {
            let accepted = artifacts.silicon.b5.decision(row).unwrap_or(-1.0) >= 0.0;
            let infested = dutts.labels()[i] == sidefp_stats::DetectionLabel::TrojanInfested;
            (accepted, infested)
        })
        .collect();
    let missed: Vec<bool> = b5_scores
        .iter()
        .filter(|(_, infested)| *infested)
        .map(|(accepted, _)| *accepted)
        .collect();
    let alarms: Vec<bool> = b5_scores
        .iter()
        .filter(|(_, infested)| !*infested)
        .map(|(accepted, _)| !*accepted)
        .collect();
    if let (Ok(fp_ci), Ok(fn_ci)) = (
        proportion_interval(&missed, 0.95, 2000, seed),
        proportion_interval(&alarms, 0.95, 2000, seed ^ 1),
    ) {
        println!(
            "B5 bootstrap 95% CIs: missed-Trojan rate {:.3} [{:.3}, {:.3}], false-alarm rate {:.3} [{:.3}, {:.3}]",
            fp_ci.estimate, fp_ci.lower, fp_ci.upper, fn_ci.estimate, fn_ci.lower, fn_ci.upper
        );
        println!();
    }

    println!("Per-variant acceptance through B5 (devices inside the trusted region):");
    match trojan_test::variant_breakdown(&artifacts.silicon.b5, &artifacts.silicon.dutts) {
        Ok(rows) => {
            for (variant, accepted, total) in rows {
                println!("  {variant:<10} {accepted:>3}/{total}");
            }
        }
        Err(e) => eprintln!("breakdown failed: {e}"),
    }

    // Persist the machine-readable report.
    if std::fs::create_dir_all("target").is_ok() {
        let md = artifacts.result.render_markdown();
        if std::fs::write("target/table1.md", md).is_ok() {
            println!("Markdown report written to target/table1.md");
            println!();
        }
    }

    println!("Paper reference (Table 1):");
    println!("  S1 FP 0/80 FN 40/40   S2 FP 0/80 FN 40/40   S3 FP 0/80 FN 24/40");
    println!("  S4 FP 0/80 FN 18/40   S5 FP 0/80 FN  3/40");
    ExitCode::SUCCESS
}
