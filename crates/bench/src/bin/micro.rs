//! Micro-timings of the kernel-method building blocks; a quick way to see
//! where an OCSVM fit or a KMM round spends its time without attaching a
//! profiler.
//!
//! Run with `--release`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sidefp_bench::or_die;
use sidefp_linalg::Matrix;
use sidefp_stats::{GramMatrix, Kernel, OneClassSvm, OneClassSvmConfig};

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1000.0
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 1500;
    let d = 6;
    let data = Matrix::from_fn(n, d, |_, _| rng.random_range(-1.5..1.5));
    let kernel = Kernel::Rbf { gamma: 0.5 };

    let gram_ms = time_ms(|| {
        let g = GramMatrix::symmetric(kernel, &data);
        std::hint::black_box(&g);
    });
    println!("gram {n}x{n} (d={d})      {gram_ms:8.2} ms");

    let median_ms = time_ms(|| {
        let k = Kernel::rbf_median_heuristic(&data);
        std::hint::black_box(&k);
    });
    println!("median heuristic {n}    {median_ms:8.2} ms");

    let fit_ms = time_ms(|| {
        let svm = OneClassSvm::fit(
            &data,
            &OneClassSvmConfig {
                nu: 0.05,
                kernel,
                ..Default::default()
            },
        );
        std::hint::black_box(&or_die(svm));
    });
    println!("ocsvm fit {n} (incl gram) {fit_ms:8.2} ms");

    let q = GramMatrix::symmetric(kernel, &data);
    let smo = sidefp_stats::qp::SmoSolver::new(sidefp_stats::qp::SmoConfig {
        upper: 1.0 / (0.05 * n as f64),
        tol: 1e-6,
        max_iter: 200_000,
    });
    let mut iterations = 0;
    let mut distinct = std::collections::BTreeSet::new();
    let smo_ms = time_ms(|| {
        let sol = or_die(smo.solve(q.matrix()));
        iterations = sol.iterations;
        for (i, a) in sol.alpha.iter().enumerate() {
            if *a > 1e-9 {
                distinct.insert(i);
            }
        }
        std::hint::black_box(&sol);
    });
    println!(
        "smo solve {n}            {smo_ms:8.2} ms  ({iterations} iterations, {} SVs)",
        distinct.len()
    );
}
