//! Regenerates **Figure 4** of the paper: PCA projections (top three
//! principal components) of the measured device fingerprints and of the
//! generated datasets S1–S5.
//!
//! Prints a per-panel summary and writes one CSV per panel under
//! `target/fig4/` with columns `series,pc1,pc2,pc3`, where `series` is one
//! of `population`, `free`, `amplitude`, `frequency` — enough to re-plot
//! the figure with any plotting tool.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin fig4 [seed]
//! ```

use std::env;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;

use sidefp_bench::plot::{scatter_svg, Series};
use sidefp_core::{ExperimentConfig, PaperExperiment};

fn main() -> ExitCode {
    let seed = env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(ExperimentConfig::default().seed);
    let config = ExperimentConfig {
        seed,
        ..Default::default()
    };
    let result = match PaperExperiment::new(config).and_then(|e| e.run()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let out_dir = std::path::Path::new("target/fig4");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    println!("Figure 4: PCA projections (top 3 PCs per dataset)");
    println!("{:-<78}", "");
    for panel in &result.fig4 {
        let mut csv = String::from("series,pc1,pc2,pc3\n");
        if let Some(pop) = &panel.population {
            for row in pop.rows_iter() {
                csv.push_str(&format!(
                    "population,{:.6},{:.6},{:.6}\n",
                    row[0],
                    row.get(1).copied().unwrap_or(0.0),
                    row.get(2).copied().unwrap_or(0.0)
                ));
            }
        }
        for (i, row) in panel.devices.rows_iter().enumerate() {
            csv.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                panel.variants[i],
                row[0],
                row.get(1).copied().unwrap_or(0.0),
                row.get(2).copied().unwrap_or(0.0)
            ));
        }
        let path = out_dir.join(format!("fig4{}_{}.csv", panel.label, panel.dataset));
        match fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes())) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }

        // SVG rendering (PC1 vs PC2), mirroring the paper's color scheme:
        // purple population, blue squares-free, green amplitude, black
        // frequency.
        let mut svg_series = Vec::new();
        if let Some(pop) = &panel.population {
            svg_series.push(Series {
                label: format!("{} population", panel.dataset),
                color: "#8e44ad".into(),
                radius: 1.5,
                points: pop
                    .rows_iter()
                    .map(|r| (r[0], r.get(1).copied().unwrap_or(0.0)))
                    .collect(),
            });
        }
        for (variant, color) in [
            ("free", "#1f5bd8"),
            ("amplitude", "#1e8f4e"),
            ("frequency", "#222222"),
        ] {
            svg_series.push(Series {
                label: variant.into(),
                color: color.into(),
                radius: 3.0,
                points: panel
                    .devices
                    .rows_iter()
                    .enumerate()
                    .filter(|(i, _)| panel.variants[*i] == variant)
                    .map(|(_, r)| (r[0], r.get(1).copied().unwrap_or(0.0)))
                    .collect(),
            });
        }
        let svg = scatter_svg(
            &format!("Fig. 4({}) — {}", panel.label, panel.dataset),
            &svg_series,
        );
        let svg_path = out_dir.join(format!("fig4{}_{}.svg", panel.label, panel.dataset));
        match fs::File::create(&svg_path).and_then(|mut f| f.write_all(svg.as_bytes())) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("cannot write {}: {e}", svg_path.display());
                return ExitCode::FAILURE;
            }
        }

        // Console summary: population size + per-series PC1 centroids, the
        // quantity that makes the overlap/separation visible in text form.
        let centroid = |variant: &str| -> (f64, usize) {
            let mut sum = 0.0;
            let mut count = 0;
            for (i, row) in panel.devices.rows_iter().enumerate() {
                if panel.variants[i] == variant {
                    sum += row[0];
                    count += 1;
                }
            }
            (if count > 0 { sum / count as f64 } else { 0.0 }, count)
        };
        let (free_c, _) = centroid("free");
        let (amp_c, _) = centroid("amplitude");
        let (freq_c, _) = centroid("frequency");
        let pop_desc = panel
            .population
            .as_ref()
            .map(|p| {
                let mean = p.col(0).iter().sum::<f64>() / p.nrows() as f64;
                format!("population n={} PC1-centroid {mean:+.4}", p.nrows())
            })
            .unwrap_or_else(|| "no population (measured devices only)".to_string());
        println!(
            "(4{}) {:<9} {pop_desc}\n      devices PC1 centroids: free {free_c:+.4}  amplitude {amp_c:+.4}  frequency {freq_c:+.4}\n      explained variance: {:.1}% / {:.1}% / {:.1}%",
            panel.label,
            panel.dataset,
            panel.explained[0] * 100.0,
            panel.explained[1] * 100.0,
            panel.explained[2] * 100.0,
        );
    }
    println!("{:-<78}", "");
    println!("CSV + SVG renderings written to target/fig4/ (two files per panel).");
    println!();
    println!("Paper reference (Fig. 4): S1/S2 disjoint from all devices; S3/S4 partial");
    println!("overlap with the Trojan-free cluster; S5 near-complete overlap, cleanly");
    println!("separated from both Trojan-infested clusters.");
    ExitCode::SUCCESS
}
