//! Long-lived fingerprint-scoring service: load the artifact once, score
//! every batch that arrives.
//!
//! Usage:
//!
//! ```text
//! score-server [--artifact PATH] [--batches N] [--batch-size N]
//!              [--threads N] [--seed S]
//! ```
//!
//! The production half of the fit/score split as a process: if the
//! artifact file exists it is loaded (version-checked, checksummed) and
//! *no fit stage ever runs*; otherwise the model is fitted once at the
//! paper's default scale and saved, so the next start is load-only. The
//! server then simulates a tester feeding it `--batches` wafer-lot
//! batches, fanned out over the worker pool: each batch gets its own
//! [`BatchScorer`] (cloned boundaries + private workspace) and its own
//! [`RunContext`], so per-batch RunHealth accounting and trace events
//! never interleave across workers.
//!
//! Determinism: batch contents are a pure function of `--seed` and the
//! batch index, and scoring itself is RNG-free, so the printed verdict
//! digest is bit-identical for any `--threads` value — the digest line
//! is the proof the fan-out does not perturb a single verdict.

use std::path::Path;
use std::time::Instant;

use sidefp_core::{BatchScorer, ExperimentConfig, FittedModel, RunContext, TraceEvent};
use sidefp_parallel::{fork_seed, map_indexed, with_threads};

/// FNV-1a 64 over a byte stream; the verdict digest accumulator.
fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct BatchReport {
    devices: usize,
    kept: usize,
    flagged: usize,
    quarantined: usize,
    ms: f64,
    /// Per-batch digest over (kept row index, verdict, decision bits).
    digest: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let parse = |name: &str, default: usize| -> usize {
        flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let artifact = flag("--artifact")
        .cloned()
        .unwrap_or_else(|| "fitted_model.sfpa".into());
    let batches = parse("--batches", 6);
    let batch_size = parse("--batch-size", 5_000);
    let threads = parse("--threads", 1);
    let seed = parse("--seed", 7) as u64;

    let model = if Path::new(&artifact).exists() {
        let start = Instant::now();
        let model = match FittedModel::load(&artifact) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("score-server: cannot load {artifact}: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "loaded {artifact} in {:.1} ms (seed {}, {} boundaries, dim {})",
            start.elapsed().as_secs_f64() * 1000.0,
            model.seed(),
            model.boundaries().len(),
            model.fingerprint_dim()
        );
        model
    } else {
        println!("no artifact at {artifact}; fitting once at paper scale ...");
        let start = Instant::now();
        let model = sidefp_bench::or_die(FittedModel::fit(&ExperimentConfig::default()));
        println!("fitted in {:.1} ms", start.elapsed().as_secs_f64() * 1000.0);
        sidefp_bench::or_die(model.save(&artifact));
        println!(
            "saved {artifact} ({} bytes); restarts are now load-only",
            model.to_bytes().len()
        );
        model
    };

    println!("serving {batches} batches of {batch_size} devices on {threads} thread(s)");
    let serve_start = Instant::now();
    let reports: Vec<BatchReport> = with_threads(threads, || {
        map_indexed(batches, |b| {
            let mut scorer = BatchScorer::new(&model);
            let ctx = RunContext::new();
            let (fps, pcms) = model.synthesize_batch(fork_seed(seed, b as u64), batch_size);
            let start = Instant::now();
            let scored = sidefp_bench::or_die(scorer.score_batch(&fps, &pcms, &ctx));
            let ms = start.elapsed().as_secs_f64() * 1000.0;
            let quarantined = ctx
                .trace_events()
                .iter()
                .filter(|r| matches!(r.event, TraceEvent::Quarantine { .. }))
                .count();
            let digest = fnv1a64(scored.kept.iter().enumerate().flat_map(|(i, &raw)| {
                let verdict = scored.verdicts[i] as u8;
                let decision = scored.decisions[(i, scored.decisions.ncols() - 1)];
                (raw as u64)
                    .to_le_bytes()
                    .into_iter()
                    .chain([verdict])
                    .chain(decision.to_bits().to_le_bytes())
            }));
            BatchReport {
                devices: batch_size,
                kept: scored.kept.len(),
                flagged: scored.flagged(),
                quarantined,
                ms,
                digest,
            }
        })
    });
    let serve_ms = serve_start.elapsed().as_secs_f64() * 1000.0;

    let mut total_kept = 0usize;
    let mut total_flagged = 0usize;
    for (b, r) in reports.iter().enumerate() {
        println!(
            "  batch {b:3}  {:6} in  {:6} kept  {:4} flagged  {:3} quarantined  {:8.1} ms",
            r.devices, r.kept, r.flagged, r.quarantined, r.ms
        );
        total_kept += r.kept;
        total_flagged += r.flagged;
    }

    // Digest of digests, in batch order: stable across thread counts
    // because map_indexed returns results in index order regardless of
    // which worker ran which batch.
    let digest = fnv1a64(reports.iter().flat_map(|r| r.digest.to_le_bytes()));
    println!(
        "served {total_kept} chips in {serve_ms:.1} ms ({:.0} chips/sec), {total_flagged} flagged",
        total_kept as f64 / (serve_ms / 1000.0)
    );
    println!("verdict digest {digest:016x} (thread-count invariant)");
}
