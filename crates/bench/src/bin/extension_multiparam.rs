//! Extension experiment: multi-parameter side-channel fingerprinting
//! (in the spirit of the paper's references \[10, 13\]).
//!
//! Compares the paper's 6-dimensional transmission-power fingerprint with
//! an 8-dimensional fingerprint that appends two supply-current (IDDT)
//! readings of the digital core. The extension also showcases the public
//! API's composability: the whole golden-free flow is assembled here from
//! library pieces rather than the canned `PaperExperiment`.
//!
//! ```text
//! cargo run --release -p sidefp-bench --bin extension_multiparam
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sidefp_chip::device::WirelessCryptoIc;
use sidefp_chip::measurement::{FingerprintPlan, SideChannelMeter};
use sidefp_chip::supply::SupplyCurrentMeter;
use sidefp_chip::trojan::Trojan;
use sidefp_core::boundary::TrustedBoundary;
use sidefp_core::config::{BoundaryConfig, ExperimentConfig, RegressionSpace};
use sidefp_core::dataset::DuttPopulation;
use sidefp_core::predictor::FingerprintPredictor;
use sidefp_linalg::Matrix;
use sidefp_silicon::foundry::Foundry;
use sidefp_silicon::monte_carlo::MonteCarloEngine;
use sidefp_silicon::params::ProcessPoint;
use sidefp_silicon::pcm::{PcmKind, PcmSuite};
use sidefp_silicon::wafer::WaferMap;
use sidefp_stats::kde::AdaptiveKde;
use sidefp_stats::{DetectionLabel, KernelMeanMatching};

/// Measures one device's fingerprint: 6 transmission powers, optionally
/// followed by 2 IDDT readings.
fn fingerprint<R: Rng>(
    process: &ProcessPoint,
    trojan: Trojan,
    key: [u8; 16],
    plan: &FingerprintPlan,
    meter: &SideChannelMeter,
    iddt: Option<&SupplyCurrentMeter>,
    rng: &mut R,
) -> Vec<f64> {
    let device = WirelessCryptoIc::new(process.clone(), key, trojan);
    let mut fp = meter.fingerprint(&device, plan, rng);
    if let Some(supply) = iddt {
        fp.extend(supply.fingerprint(&device, &plan.plaintexts()[..2], rng));
    }
    fp
}

fn run_variant(
    with_iddt: bool,
    payload_trojan: bool,
    config: &ExperimentConfig,
) -> Result<(usize, usize, usize, usize), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let key: [u8; 16] = core::array::from_fn(|_| rng.random());
    let plan = FingerprintPlan::random(&mut rng, 6)?;
    let meter = config.meter.clone();
    let supply = SupplyCurrentMeter::default();
    let iddt = with_iddt.then_some(&supply);
    let suite = config.pcm_suite.clone();

    // Pre-manufacturing: MC simulation, regression, (B1/B2 skipped here).
    let model = Foundry::nominal().with_sigma_scale(config.model_sigma_scale)?;
    let engine = MonteCarloEngine::new(model, config.mc_samples)?;
    let (_, sim_pcms, sim_fps) = engine.run_paired(
        &mut rng,
        |die, rng| suite.measure(die.process(), rng),
        |die, rng| fingerprint(die.process(), Trojan::None, key, &plan, &meter, iddt, rng),
    )?;
    let predictor = FingerprintPredictor::fit_in_space(
        &sim_pcms,
        &sim_fps,
        &config.regressor,
        RegressionSpace::Log,
    )?;

    // Silicon: fabricate the DUTT lot, measure fingerprints + PCMs.
    let foundry = Foundry::with_shift(config.process_shift);
    let map = WaferMap::grid(8);
    let lot = foundry.fabricate_lot(&mut rng, config.wafers_per_lot, &map);
    let stride = lot.len() as f64 / config.chips as f64;
    let variants: Vec<(Trojan, DetectionLabel, &'static str)> = if payload_trojan {
        vec![
            (Trojan::None, DetectionLabel::TrojanFree, "free"),
            (
                Trojan::dormant_payload(),
                DetectionLabel::TrojanInfested,
                "payload",
            ),
        ]
    } else {
        vec![
            (Trojan::None, DetectionLabel::TrojanFree, "free"),
            (
                Trojan::AmplitudeLeak {
                    delta: config.amplitude_delta,
                },
                DetectionLabel::TrojanInfested,
                "amplitude",
            ),
            (
                Trojan::FrequencyLeak {
                    delta: config.frequency_delta,
                },
                DetectionLabel::TrojanInfested,
                "frequency",
            ),
        ]
    };
    let mut fps = Vec::new();
    let mut pcms = Vec::new();
    let mut labels = Vec::new();
    let mut tags = Vec::new();
    for i in 0..config.chips {
        let die = &lot[(i as f64 * stride) as usize];
        for &(trojan, label, tag) in &variants {
            fps.push(fingerprint(
                die.process(),
                trojan,
                key,
                &plan,
                &meter,
                iddt,
                &mut rng,
            ));
            pcms.push(suite.measure(die.process(), &mut rng));
            labels.push(label);
            tags.push(tag);
        }
    }
    let fps = Matrix::from_samples(&fps)?;
    let pcms = Matrix::from_samples(&pcms)?;
    let dutts = DuttPopulation::new(fps, pcms, labels, tags)?;

    // Golden-free boundary B5: mean-shift calibration + KDE enhancement.
    let log = |m: &Matrix| Matrix::from_fn(m.nrows(), m.ncols(), |i, j| m[(i, j)].ln());
    let shifted = KernelMeanMatching::mean_shift_population(
        &log(&sim_pcms),
        &log(dutts.pcms()),
        &config.kmm,
        config.kmm_iterations,
    )?;
    let shifted = Matrix::from_fn(shifted.nrows(), shifted.ncols(), |i, j| {
        shifted[(i, j)].exp()
    });
    let s4 = predictor.predict_rows(&shifted)?;
    let kde = AdaptiveKde::fit(&s4, &config.kde)?;
    let s5 = kde.sample_matrix(&mut rng, config.kde_samples);
    let b5 = TrustedBoundary::fit(
        "B5",
        &s5,
        &BoundaryConfig {
            // Median heuristic generalizes across dimensionalities.
            gamma: None,
            ..config.enhanced_boundary
        },
        config.seed,
    )?;

    let counts = b5.evaluate(&dutts)?;
    Ok((
        counts.false_positives(),
        counts.infested_total(),
        counts.false_negatives(),
        counts.free_total(),
    ))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let base = ExperimentConfig {
        kde_samples: 20_000,
        ..Default::default()
    };
    let rich_suite = PcmSuite::new(vec![PcmKind::PathDelay, PcmKind::CapacitorMonitor], 0.002)?;
    println!("Multi-parameter extension: transmission power vs power + supply current");
    println!();
    println!("fingerprint / PCM suite                        B5 missed  B5 false-alarms");
    let cases: [(&str, bool, PcmSuite); 3] = [
        ("6x power, delay PCM (paper)", false, base.pcm_suite.clone()),
        (
            "6x power + 2x IDDT, delay PCM",
            true,
            base.pcm_suite.clone(),
        ),
        ("6x power + 2x IDDT, delay+capacitor PCMs", true, rich_suite),
    ];
    for (label, with_iddt, suite) in cases {
        let config = ExperimentConfig {
            pcm_suite: suite,
            ..base.clone()
        };
        let (fp, fp_total, fn_, fn_total) = run_variant(with_iddt, false, &config)?;
        println!("{label:<46} {fp:>5}/{fp_total} {fn_:>10}/{fn_total}");
    }

    // Trojan III: a dormant digital payload (no air-interface modulation
    // at all). The paper's power channel barely sees it; the IDDT channel
    // was built for exactly this class.
    println!();
    println!("Trojan III (dormant 1000-gate payload):");
    println!("fingerprint / PCM suite                        B5 missed  B5 false-alarms");
    let rich = PcmSuite::new(vec![PcmKind::PathDelay, PcmKind::CapacitorMonitor], 0.002)?;
    let payload_cases: [(&str, bool, PcmSuite); 2] = [
        ("6x power, delay PCM (paper)", false, base.pcm_suite.clone()),
        ("6x power + 2x IDDT, delay+capacitor PCMs", true, rich),
    ];
    for (label, with_iddt, suite) in payload_cases {
        let config = ExperimentConfig {
            pcm_suite: suite,
            ..base.clone()
        };
        let (fp, fp_total, fn_, fn_total) = run_variant(with_iddt, true, &config)?;
        println!("{label:<46} {fp:>5}/{fp_total} {fn_:>10}/{fn_total}");
    }
    println!();
    println!("Findings:");
    println!("1. Channel/PCM co-design: the IDDT channel is dominated by gate-oxide");
    println!("   capacitance, which a lone delay monitor cannot anchor across the");
    println!("   drift — its predictions land off-center and the trusted region");
    println!("   rejects every clean device. A kerf MOS-capacitor monitor (a standard");
    println!("   e-test) largely restores the anchoring.");
    println!("2. Channel coverage: the dormant-payload Trojan never touches the air");
    println!("   interface, so the paper's power fingerprint misses all 40 of them;");
    println!("   the supply-current channel exposes the payload's static leakage and");
    println!("   catches most. Multi-parameter fingerprints widen the detectable");
    println!("   Trojan class, exactly as the multimodal literature argues.");
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::ExitCode::FAILURE
        }
    }
}
