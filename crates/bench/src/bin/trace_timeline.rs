//! Renders a run's JSONL trace ring as a per-run span timeline.
//!
//! Usage:
//!
//! ```text
//! trace-timeline <trace.jsonl> [--markdown] [--out PATH]
//! trace-timeline --demo [--markdown] [--out PATH]
//! ```
//!
//! The input is the JSONL produced by `RunContext::trace_jsonl()` (one
//! record per line: `stage_start` / `stage_end` span brackets plus the
//! point events — rescues, model fits, quarantines, lot decisions,
//! scored batches). The timeline pairs the span brackets with a stack,
//! indents by nesting depth, and annotates every point event at the
//! depth it occurred, so a run reads top-to-bottom as the pipeline
//! actually executed. `--demo` runs a small in-process experiment and
//! renders its own trace, which makes the renderer self-checking
//! without an input file.
//!
//! Ring-overflow tolerance: the trace ring drops its *oldest* records,
//! so a file may open mid-span. Unmatched `stage_end` records are
//! rendered (flagged `unmatched`) rather than rejected, and spans still
//! open at end-of-file are listed as unclosed.

use std::fmt::Write as _;

use sidefp_core::{ExperimentConfig, PaperExperiment, RunContext};

/// Extracts the string value of `"key":"..."` from one JSONL line,
/// undoing the escapes our tracer emits.
fn get_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":N` from one JSONL line.
fn get_num(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// One rendered timeline row.
struct Row {
    seq: u64,
    depth: usize,
    /// "open" / "close" / "event".
    kind: &'static str,
    text: String,
}

/// Parses the JSONL trace into indented timeline rows plus the list of
/// spans still open at end-of-input.
fn build_rows(jsonl: &str) -> (Vec<Row>, Vec<String>) {
    let mut rows = Vec::new();
    let mut stack: Vec<String> = Vec::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        let seq = get_num(line, "seq").unwrap_or(0);
        let ty = get_str(line, "type").unwrap_or_else(|| "?".into());
        match ty.as_str() {
            "stage_start" => {
                let stage = get_str(line, "stage").unwrap_or_default();
                rows.push(Row {
                    seq,
                    depth: stack.len(),
                    kind: "open",
                    text: stage.clone(),
                });
                stack.push(stage);
            }
            "stage_end" => {
                let stage = get_str(line, "stage").unwrap_or_default();
                let matched = stack.last().is_some_and(|s| *s == stage);
                if matched {
                    stack.pop();
                }
                rows.push(Row {
                    seq,
                    depth: stack.len(),
                    kind: "close",
                    text: if matched {
                        stage
                    } else {
                        format!("{stage} (unmatched)")
                    },
                });
            }
            other => {
                let text = match other {
                    "rescue" => format!(
                        "rescue: {} {} x{}",
                        get_str(line, "solver").unwrap_or_default(),
                        get_str(line, "kind").unwrap_or_default(),
                        get_num(line, "count").unwrap_or(0)
                    ),
                    "model_fit" => format!(
                        "model_fit: {} {}",
                        get_str(line, "model").unwrap_or_default(),
                        get_str(line, "detail").unwrap_or_default()
                    ),
                    "quarantine" => format!(
                        "quarantine: device {} ({})",
                        get_num(line, "device").unwrap_or(0),
                        get_str(line, "reason").unwrap_or_default()
                    ),
                    "lot_decision" => format!(
                        "lot {}: {} — {}",
                        get_num(line, "lot").unwrap_or(0),
                        get_str(line, "decision").unwrap_or_default(),
                        get_str(line, "detail").unwrap_or_default()
                    ),
                    "batch_scored" => format!(
                        "batch {}: {} devices, {} kept, {} flagged",
                        get_num(line, "batch").unwrap_or(0),
                        get_num(line, "devices").unwrap_or(0),
                        get_num(line, "kept").unwrap_or(0),
                        get_num(line, "flagged").unwrap_or(0)
                    ),
                    _ => format!("{ty}: {line}"),
                };
                rows.push(Row {
                    seq,
                    depth: stack.len(),
                    kind: "event",
                    text,
                });
            }
        }
    }
    (rows, stack)
}

/// Renders the rows as a plain-text timeline.
fn render_text(rows: &[Row], open: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>6}  timeline", "seq");
    for r in rows {
        let indent = "  ".repeat(r.depth);
        let marker = match r.kind {
            "open" => "+",
            "close" => "-",
            _ => ".",
        };
        let _ = writeln!(out, "{:>6}  {indent}{marker} {}", r.seq, r.text);
    }
    if !open.is_empty() {
        let _ = writeln!(out, "unclosed at end of trace: {}", open.join(" > "));
    }
    out
}

/// Renders the rows as a nested markdown bullet list.
fn render_markdown(rows: &[Row], open: &[String]) -> String {
    let mut out = String::from("# Trace timeline\n\n");
    for r in rows {
        let indent = "  ".repeat(r.depth);
        let line = match r.kind {
            "open" => format!("**{}** (seq {})", r.text, r.seq),
            "close" => format!("end **{}** (seq {})", r.text, r.seq),
            _ => format!("{} (seq {})", r.text, r.seq),
        };
        let _ = writeln!(out, "{indent}- {line}");
    }
    if !open.is_empty() {
        let _ = writeln!(out, "\nUnclosed at end of trace: `{}`", open.join(" > "));
    }
    out
}

/// Runs a small in-process experiment and returns its trace JSONL.
fn demo_trace() -> Result<String, sidefp_core::CoreError> {
    let cfg = ExperimentConfig {
        chips: 10,
        mc_samples: 40,
        kde_samples: 1200,
        ..Default::default()
    };
    let ctx = RunContext::new();
    PaperExperiment::new(cfg)?.run_in_context(&ctx)?;
    Ok(ctx.trace_jsonl())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let demo = args.iter().any(|a| a == "--demo");
    let out_pos = args.iter().position(|a| a == "--out");
    let out_path = out_pos.and_then(|i| args.get(i + 1)).cloned();
    let input = args
        .iter()
        .enumerate()
        .skip(1)
        .find(|(i, a)| !a.starts_with("--") && out_pos != Some(i - 1))
        .map(|(_, a)| a);

    let jsonl = if demo {
        eprintln!("running the demo pipeline ...");
        match demo_trace() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace-timeline: demo pipeline failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let Some(path) = input else {
            eprintln!("usage: trace-timeline <trace.jsonl> [--markdown] [--out PATH]");
            eprintln!("       trace-timeline --demo [--markdown] [--out PATH]");
            std::process::exit(2);
        };
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace-timeline: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    };

    let (rows, open) = build_rows(&jsonl);
    let rendered = if markdown {
        render_markdown(&rows, &open)
    } else {
        render_text(&rows, &open)
    };

    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("trace-timeline: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path} ({} rows)", rows.len());
        }
        None => print!("{rendered}"),
    }
}
