//! Diagnostic dump of the experiment geometry: population means/spreads,
//! Trojan displacements and boundary decision statistics. Used to calibrate
//! the synthetic fab against the paper's Table-1 shape.

use std::process::ExitCode;

use sidefp_bench::or_die;
use sidefp_core::{ExperimentConfig, PaperExperiment};
use sidefp_stats::descriptive;

fn col_stats(name: &str, m: &sidefp_linalg::Matrix) {
    let means: Vec<f64> = (0..m.ncols())
        .map(|j| or_die(descriptive::mean(&m.col(j))))
        .collect();
    let stds: Vec<f64> = (0..m.ncols())
        .map(|j| descriptive::std_dev(&m.col(j)).unwrap_or(0.0))
        .collect();
    println!(
        "{name:<22} n={:<6} mean={} std={}",
        m.nrows(),
        sidefp_bench::format_series(&means),
        sidefp_bench::format_series(&stds)
    );
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(ExperimentConfig::default().seed);
    let config = ExperimentConfig {
        seed,
        ..Default::default()
    };
    let artifacts = PaperExperiment::new(config)?.run_with_artifacts()?;
    let pre = &artifacts.premanufacturing;
    let si = &artifacts.silicon;

    println!("== PCM populations ==");
    col_stats("sim PCMs", &pre.pcms);
    col_stats("silicon PCMs", si.dutts.pcms());

    println!("\n== fingerprint populations ==");
    col_stats("S1 (sim)", pre.s1.fingerprints());
    col_stats("S2 (sim+KDE)", pre.s2.fingerprints());
    col_stats("S3 (pred from Si)", si.s3.fingerprints());
    col_stats("S4 (pred from KMM)", si.s4.fingerprints());
    col_stats("S5 (S4+KDE)", si.s5.fingerprints());
    let free = si.dutts.free_fingerprints();
    col_stats("measured free", &free);
    let infested_rows: Vec<usize> = (0..si.dutts.len())
        .filter(|i| si.dutts.variants()[*i] == "amplitude")
        .collect();
    let amp = si.dutts.fingerprints().select_rows(&infested_rows);
    col_stats("measured amplitude", &amp);
    let freq_rows: Vec<usize> = (0..si.dutts.len())
        .filter(|i| si.dutts.variants()[*i] == "frequency")
        .collect();
    let fq = si.dutts.fingerprints().select_rows(&freq_rows);
    col_stats("measured frequency", &fq);

    println!("\n== per-die Trojan displacement (relative, col 0) ==");
    let fp = si.dutts.fingerprints();
    let mut rel_amp = Vec::new();
    let mut rel_freq = Vec::new();
    for c in 0..(si.dutts.len() / 3) {
        let f = fp.row(3 * c)[0];
        rel_amp.push(fp.row(3 * c + 1)[0] / f - 1.0);
        rel_freq.push(fp.row(3 * c + 2)[0] / f - 1.0);
    }
    println!(
        "amplitude trojan: mean {:+.4} std {:.4}",
        descriptive::mean(&rel_amp)?,
        descriptive::std_dev(&rel_amp)?
    );
    println!(
        "frequency trojan: mean {:+.4} std {:.4}",
        descriptive::mean(&rel_freq)?,
        descriptive::std_dev(&rel_freq)?
    );

    println!("\n== boundary decision values on measured devices ==");
    for (name, b) in [
        ("B1", &pre.b1),
        ("B2", &pre.b2),
        ("B3", &si.b3),
        ("B4", &si.b4),
        ("B5", &si.b5),
    ] {
        let mut free_d = Vec::new();
        let mut inf_d = Vec::new();
        for (i, row) in fp.rows_iter().enumerate() {
            let d = b.decision(row)?;
            if si.dutts.variants()[i] == "free" {
                free_d.push(d);
            } else {
                inf_d.push(d);
            }
        }
        println!(
            "{name}: free mean {:+.4} (min {:+.4}) | infested mean {:+.4} (max {:+.4})",
            descriptive::mean(&free_d)?,
            descriptive::min(&free_d)?,
            descriptive::mean(&inf_d)?,
            descriptive::max(&inf_d)?
        );
    }

    println!("\n== regression quality on MC training data ==");
    let preds = pre.predictor.predict_rows(&pre.pcms)?;
    for j in 0..preds.ncols() {
        let r2 = descriptive::r_squared(&pre.s1.fingerprints().col(j), &preds.col(j))?;
        println!("fingerprint {j}: R^2 = {r2:.3}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
